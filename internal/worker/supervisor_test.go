package worker

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/journal"
)

// The supervisor tests run real subprocesses: the test binary re-executes
// itself with SWIFI_WORKER_TEST set, and TestMain routes those executions
// into helperMain, which plays a worker with a scripted behavior — honest,
// crashing, stalling, or speaking garbage.
func TestMain(m *testing.M) {
	if b := os.Getenv("SWIFI_WORKER_TEST"); b != "" {
		os.Exit(helperMain(b))
	}
	os.Exit(m.Run())
}

// helperSpec is the test Spec payload.
type helperSpec struct {
	Units int `json:"units"`
}

// helperRunner answers units with a deterministic function of the index so
// the supervisor tests can verify every verdict independently.
type helperRunner struct{ n int }

func (r *helperRunner) Units() int { return r.n }

func (r *helperRunner) Run(unit int) (journal.Outcome, []byte, error) {
	if unit == envInt("SWIFI_WORKER_TEST_DIE_UNIT", -1) && claimFlag() {
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
	}
	if unit == envInt("SWIFI_WORKER_TEST_STALL_UNIT", -1) && claimFlag() {
		// SIGSTOP freezes the whole process, heartbeat goroutine included —
		// exactly the "alive but wedged" shape the silence timer exists for.
		syscall.Kill(os.Getpid(), syscall.SIGSTOP)
	}
	return expectedOutcome(unit), []byte(fmt.Sprintf("u%d", unit)), nil
}

// expectedOutcome is the deterministic per-unit verdict both sides compute.
func expectedOutcome(unit int) journal.Outcome {
	return journal.Outcome{Mode: uint8(unit%4 + 1), Activated: unit%2 == 0}
}

func envInt(name string, def int) int {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

// claimFlag returns true at most once across all worker processes sharing
// the flag file (misbehave-once semantics); with no flag file configured it
// always returns true (misbehave-always).
func claimFlag() bool {
	path := os.Getenv("SWIFI_WORKER_TEST_FLAG")
	if path == "" {
		return true
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return false
	}
	f.Close()
	return true
}

func helperMain(behavior string) int {
	switch behavior {
	case "echo":
		err := Serve(os.Stdin, os.Stdout, func(spec Spec) (Runner, error) {
			var cfg helperSpec
			if err := json.Unmarshal(spec.Payload, &cfg); err != nil {
				return nil, err
			}
			return &helperRunner{n: cfg.Units}, nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	case "exit":
		return 3
	case "garbage":
		// A zero length prefix is the canonical garbage frame.
		os.Stdout.Write(make([]byte, 64))
		return 0
	case "truncated":
		// Claim a 100-byte frame, deliver 5, die.
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], 100)
		os.Stdout.Write(hdr[:])
		os.Stdout.Write([]byte{msgReady, 1, 2, 3, 4})
		return 0
	case "badversion", "badfp":
		typ, payload, err := ReadFrameCRC(os.Stdin)
		if err != nil || typ != msgHello {
			return 1
		}
		h, err := decodeHello(payload)
		if err != nil {
			return 1
		}
		var cfg helperSpec
		json.Unmarshal(h.Spec.Payload, &cfg)
		rd := ready{Version: ProtocolVersion, Fingerprint: h.Spec.Fingerprint, Units: uint32(cfg.Units)}
		if behavior == "badversion" {
			rd.Version = 99
		} else {
			rd.Fingerprint++
		}
		WriteFrameCRC(os.Stdout, msgReady, encodeReady(rd))
		// Hold the pipe open so the supervisor reacts to the frame, not EOF.
		ReadFrameCRC(os.Stdin)
		return 0
	default:
		fmt.Fprintf(os.Stderr, "unknown worker test behavior %q\n", behavior)
		return 2
	}
}

const testFingerprint = 0x5157494649f00d01

// testOptions builds fast-cadence pool options running this test binary as
// the worker with the given scripted behavior.
func testOptions(behavior string, units int, extraEnv ...string) Options {
	payload, _ := json.Marshal(helperSpec{Units: units})
	return Options{
		Workers: 2,
		Command: func() *exec.Cmd {
			cmd := exec.Command(os.Args[0])
			cmd.Env = append(os.Environ(), "SWIFI_WORKER_TEST="+behavior)
			cmd.Env = append(cmd.Env, extraEnv...)
			cmd.Stderr = os.Stderr
			return cmd
		},
		Spec:              Spec{Kind: "test/v1", Fingerprint: testFingerprint, Payload: payload},
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		BackoffBase:       10 * time.Millisecond,
		BackoffMax:        50 * time.Millisecond,
		Quarantine:        journal.Outcome{Mode: 5},
	}
}

// collect runs the pool over [0, units) and gathers results keyed by index.
func collect(t *testing.T, opts Options, units int) (map[int]Result, error) {
	t.Helper()
	pool, err := NewPool(opts)
	if err != nil {
		t.Fatal(err)
	}
	indices := make([]int, units)
	for i := range indices {
		indices[i] = i
	}
	var mu sync.Mutex
	got := make(map[int]Result)
	runErr := pool.Run(context.Background(), indices, func(res Result) error {
		mu.Lock()
		defer mu.Unlock()
		if prev, dup := got[res.Index]; dup {
			t.Errorf("unit %d delivered twice: %+v then %+v", res.Index, prev, res)
		}
		got[res.Index] = res
		return nil
	})
	return got, runErr
}

// verify checks that every unit in [0, units) got its deterministic verdict
// except the listed quarantined ones, which must carry the quarantine mode.
func verify(t *testing.T, got map[int]Result, units int, quarantined ...int) {
	t.Helper()
	q := make(map[int]bool, len(quarantined))
	for _, ix := range quarantined {
		q[ix] = true
	}
	if len(got) != units {
		t.Fatalf("got %d results, want %d", len(got), units)
	}
	for i := 0; i < units; i++ {
		res, ok := got[i]
		if !ok {
			t.Fatalf("unit %d has no result", i)
		}
		if q[i] {
			if !res.Quarantined || res.Outcome.Mode != 5 {
				t.Fatalf("unit %d: want quarantine, got %+v", i, res)
			}
			continue
		}
		if res.Quarantined {
			t.Fatalf("unit %d unexpectedly quarantined", i)
		}
		if want := expectedOutcome(i); res.Outcome != want {
			t.Fatalf("unit %d: outcome %+v, want %+v", i, res.Outcome, want)
		}
		if want := fmt.Sprintf("u%d", i); string(res.Payload) != want {
			t.Fatalf("unit %d: payload %q, want %q", i, res.Payload, want)
		}
	}
}

func TestPoolRunsAllUnits(t *testing.T) {
	got, err := collect(t, testOptions("echo", 20), 20)
	if err != nil {
		t.Fatal(err)
	}
	verify(t, got, 20)
}

func TestPoolWorkerKilledMidUnit(t *testing.T) {
	flag := t.TempDir() + "/died"
	opts := testOptions("echo", 16,
		"SWIFI_WORKER_TEST_DIE_UNIT=7",
		"SWIFI_WORKER_TEST_FLAG="+flag)
	got, err := collect(t, opts, 16)
	if err != nil {
		t.Fatal(err)
	}
	// The SIGKILLed delivery is retried on a fresh worker: all sixteen units
	// finish with their true verdicts, nothing is quarantined or lost.
	verify(t, got, 16)
	if _, err := os.Stat(flag); err != nil {
		t.Fatal("the scripted mid-unit kill never happened; the test proved nothing")
	}
}

func TestPoolHeartbeatStall(t *testing.T) {
	flag := t.TempDir() + "/stalled"
	opts := testOptions("echo", 12,
		"SWIFI_WORKER_TEST_STALL_UNIT=4",
		"SWIFI_WORKER_TEST_FLAG="+flag)
	opts.HeartbeatTimeout = 400 * time.Millisecond
	got, err := collect(t, opts, 12)
	if err != nil {
		t.Fatal(err)
	}
	verify(t, got, 12)
	if _, err := os.Stat(flag); err != nil {
		t.Fatal("the scripted stall never happened; the test proved nothing")
	}
}

func TestPoolQuarantinesAfterRedelivery(t *testing.T) {
	// Unit 5 SIGKILLs every worker it touches. After MaxDeliveries workers
	// it must be quarantined rather than burn the whole restart budget.
	opts := testOptions("echo", 10, "SWIFI_WORKER_TEST_DIE_UNIT=5")
	opts.MaxDeliveries = 2
	opts.MaxRestarts = 100
	got, err := collect(t, opts, 10)
	if err != nil {
		t.Fatal(err)
	}
	verify(t, got, 10, 5)
}

func TestPoolCircuitBreaker(t *testing.T) {
	for _, behavior := range []string{"exit", "garbage", "truncated"} {
		t.Run(behavior, func(t *testing.T) {
			opts := testOptions(behavior, 6)
			opts.MaxRestarts = 3
			_, err := collect(t, opts, 6)
			if !errors.Is(err, ErrCircuitOpen) {
				t.Fatalf("want ErrCircuitOpen, got %v", err)
			}
		})
	}
}

func TestPoolRejectsVersionAndPlanMismatch(t *testing.T) {
	for behavior, want := range map[string]string{
		"badversion": "protocol version",
		"badfp":      "fingerprint",
	} {
		t.Run(behavior, func(t *testing.T) {
			_, err := collect(t, testOptions(behavior, 4), 4)
			if err == nil || !strings.Contains(err.Error(), want) {
				t.Fatalf("want error mentioning %q, got %v", want, err)
			}
		})
	}
}

func TestPoolContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pool, err := NewPool(testOptions("echo", 8))
	if err != nil {
		t.Fatal(err)
	}
	err = pool.Run(ctx, []int{0, 1, 2, 3}, func(Result) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestPoolCallbackErrorAborts(t *testing.T) {
	pool, err := NewPool(testOptions("echo", 8))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("journal full")
	indices := []int{0, 1, 2, 3, 4, 5, 6, 7}
	err = pool.Run(context.Background(), indices, func(Result) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("want the callback error, got %v", err)
	}
}
