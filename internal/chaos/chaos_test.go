package chaos

import (
	"bytes"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// pipeConn returns a connected TCP pair on loopback. net.Pipe is not used
// because the wrapper severs connections with Close, which net.Pipe turns
// into immediate errors on both ends rather than the TCP half-close the
// fabric actually sees.
func pipeConn(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = ln.Accept()
	}()
	client, cerr := net.Dial("tcp", ln.Addr().String())
	if cerr != nil {
		t.Fatal(cerr)
	}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

// TestPassThroughWhenDisabled: a zero config must not even wrap.
func TestPassThroughWhenDisabled(t *testing.T) {
	c := New(Config{}, nil)
	client, _ := pipeConn(t)
	if got := c.Wrap(client); got != client {
		t.Fatal("zero config wrapped the connection")
	}
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	if got := c.Listener(ln); got != ln {
		t.Fatal("zero config wrapped the listener")
	}
}

// TestCorruptionIsDeterministic: the same seed must flip the same bytes of
// the same write sequence; a different seed must not.
func TestCorruptionIsDeterministic(t *testing.T) {
	run := func(seed int64) []byte {
		client, server := pipeConn(t)
		c := New(Config{Seed: seed, Corrupt: 0.5}, nil)
		wrapped := c.Wrap(client)
		var got bytes.Buffer
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			io.Copy(&got, server)
		}()
		for i := 0; i < 32; i++ {
			msg := bytes.Repeat([]byte{byte(i)}, 64)
			if _, err := wrapped.Write(msg); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
		}
		wrapped.Close()
		wg.Wait()
		return got.Bytes()
	}
	a, b := run(7), run(7)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption schedules")
	}
	if c := run(8); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corruption schedules")
	}
	clean := bytes.Repeat([]byte{0}, 0)
	_ = clean
	// And corruption actually happened: compare against the uncorrupted
	// stream.
	var want bytes.Buffer
	for i := 0; i < 32; i++ {
		want.Write(bytes.Repeat([]byte{byte(i)}, 64))
	}
	if bytes.Equal(a, want.Bytes()) {
		t.Fatal("0.5 corruption probability corrupted nothing over 32 writes")
	}
	if len(a) != want.Len() {
		t.Fatalf("corruption changed the stream length: %d != %d", len(a), want.Len())
	}
}

// TestDropSwallowsWrites: dropped writes report success but never arrive.
func TestDropSwallowsWrites(t *testing.T) {
	client, server := pipeConn(t)
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	c := New(Config{Seed: 3, Drop: 1.0}, m)
	wrapped := c.Wrap(client)
	if n, err := wrapped.Write([]byte("vanish")); err != nil || n != 6 {
		t.Fatalf("dropped write returned (%d, %v), want (6, nil)", n, err)
	}
	wrapped.Close()
	if b, _ := io.ReadAll(server); len(b) != 0 {
		t.Fatalf("peer received %d bytes through a 100%% drop config", len(b))
	}
	if got := reg.Counters()["chaos_dropped_writes_total"]; got != 1 {
		t.Fatalf("chaos_dropped_writes_total = %d, want 1", got)
	}
}

// TestResetSeversConnection: a reset write fails and kills the conn for
// both sides.
func TestResetSeversConnection(t *testing.T) {
	client, server := pipeConn(t)
	c := New(Config{Seed: 1, Reset: 1.0}, nil)
	wrapped := c.Wrap(client)
	if _, err := wrapped.Write([]byte("doomed")); err == nil {
		t.Fatal("reset write succeeded")
	} else if !strings.Contains(err.Error(), "chaos:") {
		t.Fatalf("reset error %v does not identify itself as injected", err)
	}
	if _, err := wrapped.Write([]byte("after")); err == nil {
		t.Fatal("write after reset succeeded")
	}
	if _, err := server.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after reset")
	}
}

// TestTruncateDeliversPrefix: the peer sees the torn prefix, the caller
// sees an error, and the connection is dead.
func TestTruncateDeliversPrefix(t *testing.T) {
	client, server := pipeConn(t)
	c := New(Config{Seed: 1, Truncate: 1.0}, nil)
	wrapped := c.Wrap(client)
	msg := []byte("0123456789")
	n, err := wrapped.Write(msg)
	if err == nil {
		t.Fatal("truncated write succeeded")
	}
	if n != len(msg)/2 {
		t.Fatalf("truncated write reported %d bytes, want %d", n, len(msg)/2)
	}
	got, _ := io.ReadAll(server)
	if !bytes.Equal(got, msg[:len(msg)/2]) {
		t.Fatalf("peer received %q, want the torn prefix %q", got, msg[:len(msg)/2])
	}
}

// TestPartitionBlackHole: writes during a partition succeed silently,
// reads stall, and the connection dies when the window closes.
func TestPartitionBlackHole(t *testing.T) {
	client, server := pipeConn(t)
	c := New(Config{Seed: 1, Partition: 1.0, PartitionFor: 50 * time.Millisecond}, nil)
	wrapped := c.Wrap(client)
	if _, err := wrapped.Write([]byte("into the void")); err != nil {
		t.Fatalf("partition-entering write failed: %v", err)
	}
	if _, err := wrapped.Write([]byte("still void")); err != nil {
		t.Fatalf("write during partition failed: %v", err)
	}
	start := time.Now()
	if _, err := wrapped.Read(make([]byte, 1)); err == nil {
		t.Fatal("read during partition returned data")
	}
	if waited := time.Since(start); waited < 30*time.Millisecond {
		t.Fatalf("partition read returned after %v, want a stall near the 50ms window", waited)
	}
	if b, _ := io.ReadAll(server); len(b) != 0 {
		t.Fatalf("peer received %d bytes through a black hole", len(b))
	}
}

// TestLatencyDelaysWrites: latency must actually slow the write path.
func TestLatencyDelaysWrites(t *testing.T) {
	client, server := pipeConn(t)
	go io.Copy(io.Discard, server)
	c := New(Config{Seed: 1, Latency: 20 * time.Millisecond}, nil)
	wrapped := c.Wrap(client)
	start := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := wrapped.Write([]byte("slow")); err != nil {
			t.Fatal(err)
		}
	}
	if took := time.Since(start); took < 50*time.Millisecond {
		t.Fatalf("3 writes at 20ms latency took %v, want >= 50ms", took)
	}
}

// TestParseSpec covers the CLI surface: round-trip, defaults, and the
// rejection of unknown keys and bad probabilities.
func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7,corrupt=0.01,drop=0.005,latency=2ms,jitter=1ms,bandwidth=1048576,truncate=0.002,reset=0.002,partition=0.001,partition-for=300ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 7, Corrupt: 0.01, Drop: 0.005, Latency: 2 * time.Millisecond,
		Jitter: time.Millisecond, Bandwidth: 1 << 20, Truncate: 0.002,
		Reset: 0.002, Partition: 0.001, PartitionFor: 300 * time.Millisecond,
	}
	if cfg != want {
		t.Fatalf("ParseSpec = %+v, want %+v", cfg, want)
	}
	if !cfg.Enabled() {
		t.Fatal("parsed config reports disabled")
	}
	if cfg, err := ParseSpec(""); err != nil || cfg.Enabled() {
		t.Fatalf("empty spec: (%+v, %v), want disabled, nil", cfg, err)
	}
	if _, err := ParseSpec("corrupt=1.5"); err == nil {
		t.Fatal("probability above 1 accepted")
	}
	if _, err := ParseSpec("corupt=0.1"); err == nil || !strings.Contains(err.Error(), "valid:") {
		t.Fatalf("unknown key error %v does not list valid keys", err)
	}
	if _, err := ParseSpec("seed"); err == nil {
		t.Fatal("bare key accepted")
	}
}

// TestWrapOrdinalsIndependent: two connections from one Chaos get distinct
// schedules (different ordinals), and a fresh Chaos with the same seed
// replays them.
func TestWrapOrdinalsIndependent(t *testing.T) {
	stream := func(c *Chaos) []byte {
		client, server := pipeConn(t)
		wrapped := c.Wrap(client)
		var got bytes.Buffer
		done := make(chan struct{})
		go func() { defer close(done); io.Copy(&got, server) }()
		for i := 0; i < 16; i++ {
			wrapped.Write(bytes.Repeat([]byte{0xAA}, 32))
		}
		wrapped.Close()
		<-done
		return got.Bytes()
	}
	a := New(Config{Seed: 42, Corrupt: 0.5}, nil)
	first, second := stream(a), stream(a)
	if bytes.Equal(first, second) {
		t.Fatal("two connections share one corruption schedule")
	}
	b := New(Config{Seed: 42, Corrupt: 0.5}, nil)
	if re := stream(b); !bytes.Equal(first, re) {
		t.Fatal("fresh Chaos with the same seed did not replay connection 0's schedule")
	}
}
