package cc_test

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/vm"
)

const debugProbe = `
int limit = 10;
int square(int x) { return x * x; }
int main() {
    int i;
    int total = 0;
    int a[10];
    for (i = 0; i < 10; i++) {
        a[i] = square(i);
    }
    for (i = 0; i < 10; i++) {
        if (a[i] >= 25 && a[i] < limit * 8) {
            total = total + a[i];
        }
    }
    print_int(total);
    return 0;
}`

func compileProbe(t *testing.T) *cc.Compiled {
	t.Helper()
	c, err := cc.Compile(debugProbe)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDebugFuncInfo(t *testing.T) {
	c := compileProbe(t)
	d := c.Debug
	if len(d.Funcs) != 2 {
		t.Fatalf("got %d functions, want 2", len(d.Funcs))
	}
	main := d.FuncByName("main")
	if main == nil {
		t.Fatal("no debug record for main")
	}
	if main.FrameSize%8 != 0 {
		t.Errorf("frame size %d not 8-aligned", main.FrameSize)
	}
	var names []string
	for _, l := range main.Locals {
		names = append(names, l.Name)
	}
	want := []string{"i", "total", "a"}
	if len(names) != len(want) {
		t.Fatalf("locals %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("local %d = %s, want %s", i, names[i], want[i])
		}
	}
	// Array a occupies 40 bytes after total.
	a := main.Locals[2]
	if a.Size != 40 {
		t.Errorf("sizeof(a) = %d, want 40", a.Size)
	}
	if d.FuncAt(main.Entry) != main || d.FuncAt(main.End-4) != main {
		t.Error("FuncAt does not cover main's range")
	}
	if d.FuncAt(0xdeadbeef) != nil {
		t.Error("FuncAt of wild address should be nil")
	}
	if d.FuncByName("nosuch") != nil {
		t.Error("FuncByName of unknown name should be nil")
	}
}

func TestDebugAssignLocations(t *testing.T) {
	c := compileProbe(t)
	var lhs []string
	inHeader := 0
	for _, a := range c.Debug.Assigns {
		lhs = append(lhs, a.LHS)
		if a.InLoopHeader {
			inHeader++
		}
		if a.StoreAddr == 0 {
			t.Errorf("assign %s has zero store address", a.LHS)
		}
		// The recorded store must decode to a store instruction.
		w, err := c.Prog.ReadTextWord(a.StoreAddr)
		if err != nil {
			t.Fatalf("assign %s: %v", a.LHS, err)
		}
		in, err := vm.Decode(w)
		if err != nil {
			t.Fatalf("assign %s: %v", a.LHS, err)
		}
		switch in.Op {
		case vm.OpStw, vm.OpStb, vm.OpStwx, vm.OpStbx:
		default:
			t.Errorf("assign %s records %v, not a store", a.LHS, in.Op)
		}
	}
	// total=0, a[i]=..., total=total+a[i], plus 4 loop-header i assignments.
	wantLHS := map[string]int{"total": 2, "a[]": 1, "i": 4}
	got := map[string]int{}
	for _, n := range lhs {
		got[n]++
	}
	for k, v := range wantLHS {
		if got[k] != v {
			t.Errorf("assignments to %s = %d, want %d (all: %v)", k, got[k], v, lhs)
		}
	}
	if inHeader != 4 {
		t.Errorf("loop-header assigns = %d, want 4", inHeader)
	}
}

func TestDebugCheckLocations(t *testing.T) {
	c := compileProbe(t)
	ops := map[string]int{}
	for _, ck := range c.Debug.Checks {
		ops[ck.Op]++
		w, err := c.Prog.ReadTextWord(ck.BcAddr)
		if err != nil {
			t.Fatal(err)
		}
		in, err := vm.Decode(w)
		if err != nil {
			t.Fatal(err)
		}
		if in.Op != vm.OpBc {
			t.Errorf("check %s at %#x records %v, not bc", ck.Op, ck.BcAddr, in.Op)
		}
		if vm.Cond(in.RD) != ck.BcCond {
			t.Errorf("check %s: bc cond %v, recorded %v", ck.Op, vm.Cond(in.RD), ck.BcCond)
		}
		if ck.TakenAddr == 0 {
			t.Errorf("check %s has no taken address", ck.Op)
		}
	}
	// Two i<10 loop conditions, one >=, one <, one && connective.
	if ops["<"] != 3 { // i<10 twice + a[i] < limit*8
		t.Errorf("< checks = %d, want 3 (%v)", ops["<"], ops)
	}
	if ops[">="] != 1 {
		t.Errorf(">= checks = %d, want 1 (%v)", ops[">="], ops)
	}
	if ops["&&"] != 1 {
		t.Errorf("&& checks = %d, want 1 (%v)", ops["&&"], ops)
	}
}

func TestDebugArrayLoadsInChecks(t *testing.T) {
	c := compileProbe(t)
	withArrays := 0
	for _, ck := range c.Debug.Checks {
		if len(ck.ArrayLoads) > 0 {
			withArrays++
			for _, al := range ck.ArrayLoads {
				if al.ElemSize != 4 {
					t.Errorf("array load elem size %d, want 4", al.ElemSize)
				}
				w, err := c.Prog.ReadTextWord(al.Addr)
				if err != nil {
					t.Fatal(err)
				}
				in, err := vm.Decode(w)
				if err != nil {
					t.Fatal(err)
				}
				if in.Op != vm.OpLwz && in.Op != vm.OpLbz {
					t.Errorf("array load records %v", in.Op)
				}
			}
		}
	}
	// a[i] >= 25 and a[i] < limit*8 both load a[i].
	if withArrays < 2 {
		t.Errorf("checks with array loads = %d, want >= 2", withArrays)
	}
}

// TestCheckMutationSemantics flips the < in "i < 10" to <= by rewriting the
// recorded bc condition (the paper's Figure 5 strategy 1) and checks the
// program runs one extra iteration: the debug records must be precise enough
// to drive real mutations.
func TestCheckMutationSemantics(t *testing.T) {
	src := `
int main() {
    int i;
    int n = 0;
    for (i = 0; i < 10; i++) { n++; }
    print_int(n);
    return 0;
}`
	c, err := cc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	var target *cc.CheckInfo
	for i := range c.Debug.Checks {
		if c.Debug.Checks[i].Op == "<" {
			target = &c.Debug.Checks[i]
		}
	}
	if target == nil {
		t.Fatal("no < check found")
	}

	m := vm.New(vm.Config{})
	if err := m.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}
	// Mutate < to <=: with the Negated encoding this flips the bc condition
	// from its recorded value to the negation of <=.
	w, err := m.ReadWord(target.BcAddr)
	if err != nil {
		t.Fatal(err)
	}
	in, err := vm.Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	var newCond vm.Cond
	if target.Negated {
		newCond = vm.CondGT // !(<=)
	} else {
		newCond = vm.CondLE
	}
	in.RD = uint8(newCond)
	m.SetTextWritable(true)
	if err := m.WriteWord(target.BcAddr, vm.Encode(in)); err != nil {
		t.Fatal(err)
	}
	m.SetTextWritable(false)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := string(m.Output()); got != "11\n" {
		t.Errorf("mutated output = %q, want \"11\\n\"", got)
	}
}

// TestAssignMutationSemantics nops out the store of "n = n + 1" inside a
// loop (the "unassigned" error type of Table 3): the final value must stay 0.
func TestAssignMutationSemantics(t *testing.T) {
	src := `
int main() {
    int i;
    int n = 0;
    for (i = 0; i < 10; i++) { n = n + 1; }
    print_int(n);
    return 0;
}`
	c, err := cc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	var store uint32
	for _, a := range c.Debug.Assigns {
		if a.LHS == "n" && !a.InLoopHeader && a.Line == 5 {
			store = a.StoreAddr
		}
	}
	if store == 0 {
		t.Fatal("no store for n=n+1 found")
	}
	m := vm.New(vm.Config{})
	if err := m.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}
	m.SetTextWritable(true)
	if err := m.WriteWord(store, vm.Encode(vm.Inst{Op: vm.OpNop})); err != nil {
		t.Fatal(err)
	}
	m.SetTextWritable(false)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := string(m.Output()); got != "0\n" {
		t.Errorf("no-assign output = %q, want \"0\\n\"", got)
	}
}

func TestDebugSpans(t *testing.T) {
	c := compileProbe(t)
	if len(c.Debug.Spans) == 0 {
		t.Fatal("no statement spans recorded")
	}
	for _, s := range c.Debug.Spans {
		if s.End < s.Start {
			t.Errorf("span line %d has end %#x < start %#x", s.Line, s.End, s.Start)
		}
	}
	if spans := c.Debug.SpansForLine(16); len(spans) == 0 {
		t.Error("no span for print_int line")
	}
}
