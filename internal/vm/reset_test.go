package vm_test

import (
	"bytes"
	"testing"

	"repro/internal/programs"
	"repro/internal/vm"
	"repro/internal/workload"
)

// runSnapshot captures everything observable about one finished run.
type runSnapshot struct {
	state  vm.State
	exc    vm.Exc
	output []byte
	cycles uint64
	exit   int32
}

func snapshot(m *vm.Machine) runSnapshot {
	exc, _ := m.Exception()
	return runSnapshot{
		state:  m.State(),
		exc:    exc,
		output: m.Output(),
		cycles: m.Cycles(),
		exit:   m.ExitStatus(),
	}
}

func (a runSnapshot) equal(b runSnapshot) bool {
	return a.state == b.state && a.exc == b.exc && a.cycles == b.cycles &&
		a.exit == b.exit && bytes.Equal(a.output, b.output)
}

// TestResetMatchesFreshMachine proves the machine-pool contract: across the
// Table 4 programs, a machine reused via Reset produces runs identical in
// Output, Cycles and State to a machine freshly allocated and loaded for
// each run — the paper's "reboot between injections" without the reboot
// cost.
func TestResetMatchesFreshMachine(t *testing.T) {
	for _, p := range programs.Table4Programs() {
		c, err := p.Compile()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		cases, err := workload.Generate(p.Kind, 4, 7)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}

		pooled := vm.New(vm.Config{})
		if err := pooled.Load(c.Prog.Image); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for ci := range cases {
			fresh := vm.New(vm.Config{})
			if err := fresh.Load(c.Prog.Image); err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			fresh.SetInput(cases[ci].Input.Ints)
			fresh.SetByteInput(cases[ci].Input.Bytes)
			if _, err := fresh.Run(); err != nil {
				t.Fatalf("%s case %d: %v", p.Name, ci, err)
			}

			if err := pooled.Reset(); err != nil {
				t.Fatalf("%s case %d: reset: %v", p.Name, ci, err)
			}
			pooled.SetInput(cases[ci].Input.Ints)
			pooled.SetByteInput(cases[ci].Input.Bytes)
			if _, err := pooled.Run(); err != nil {
				t.Fatalf("%s case %d: %v", p.Name, ci, err)
			}

			f, r := snapshot(fresh), snapshot(pooled)
			if !f.equal(r) {
				t.Fatalf("%s case %d: fresh %+v != reset %+v", p.Name, ci, f, r)
			}
			if f.state != vm.StateHalted || f.exit != 0 {
				t.Fatalf("%s case %d: clean run did not halt cleanly: %+v", p.Name, ci, f)
			}
		}
	}
}

// TestResetClearsCorruptionState exercises the dirty-text path: after the
// injector-style mutations a pooled machine can accumulate — persistent
// text corruption, hooks, breakpoints, a shrunken watchdog — Reset must
// return it to a state indistinguishable from fresh.
func TestResetClearsCorruptionState(t *testing.T) {
	p, ok := programs.ByName("C.team1")
	if !ok {
		t.Fatal("C.team1 missing from the suite")
	}
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cases, err := workload.Generate(p.Kind, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	in := cases[0].Input

	fresh := vm.New(vm.Config{})
	if err := fresh.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}
	fresh.SetInput(in.Ints)
	fresh.SetByteInput(in.Bytes)
	if _, err := fresh.Run(); err != nil {
		t.Fatal(err)
	}
	want := snapshot(fresh)

	m := vm.New(vm.Config{})
	if err := m.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}

	// Corrupt the machine the way an armed session would: overwrite the
	// entry instruction in text (undecodable word), install hooks that
	// would corrupt every fetch and store, arm a breakpoint, shrink the
	// watchdog, and run the now-broken program.
	m.SetTextWritable(true)
	if err := m.WriteWord(vm.TextBase, 0xffffffff); err != nil {
		t.Fatal(err)
	}
	m.SetTextWritable(false)
	m.SetFetchHook(func(addr, word uint32) uint32 { return 0xffffffff })
	m.SetStoreHook(func(addr, value uint32) uint32 { return value + 1 })
	m.SetIABRHook(func(mm *vm.Machine, addr uint32) { mm.SetReg(3, 0xdead) })
	if err := m.SetIABR(0, c.Prog.Image.Entry); err != nil {
		t.Fatal(err)
	}
	m.SetMaxCycles(10)
	m.SetInput(in.Ints)
	m.SetByteInput(in.Bytes)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.State() == vm.StateHalted && m.ExitStatus() == 0 {
		t.Fatal("corrupted machine still ran cleanly; the scenario is vacuous")
	}

	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	m.SetMaxCycles(0)
	m.SetInput(in.Ints)
	m.SetByteInput(in.Bytes)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := snapshot(m); !got.equal(want) {
		t.Fatalf("after reset: got %+v, want fresh behaviour %+v", got, want)
	}
}

// TestResetUnloaded confirms Reset refuses a machine that was never loaded.
func TestResetUnloaded(t *testing.T) {
	m := vm.New(vm.Config{})
	if err := m.Reset(); err == nil {
		t.Fatal("Reset on an unloaded machine must fail")
	}
}
