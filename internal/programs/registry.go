package programs

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/cc"
	"repro/internal/odc"
)

// Kind identifies which specification a program implements.
type Kind int

// Program kinds.
const (
	KindCamelot Kind = iota + 1
	KindJamesB
	KindSOR
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCamelot:
		return "Camelot"
	case KindJamesB:
		return "JamesB"
	case KindSOR:
		return "SOR"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Oracle returns the reference solver for this kind of program.
func (k Kind) Oracle() func(Input) (string, error) {
	switch k {
	case KindCamelot:
		return CamelotSolve
	case KindJamesB:
		return JamesBSolve
	case KindSOR:
		return SORSolve
	}
	return nil
}

// RealFault documents one real software fault: the corrective diff and its
// ODC classification, as in the paper's §5.
type RealFault struct {
	ODCType odc.DefectType
	// FaultyCode and CorrectCode are the exact source fragments that
	// differ; replacing CorrectCode with FaultyCode in the corrected source
	// reconstructs the program as originally submitted.
	FaultyCode  string
	CorrectCode string
	Description string
}

// Program is one target program of the suite.
type Program struct {
	Name      string // paper-style name ("C.team1", "JB.team6", "SOR")
	Kind      Kind
	Source    string     // corrected source
	Fault     *RealFault // nil when the program never had a known fault
	Features  string     // the Table 2 blurb
	Recursive bool
	Dynamic   bool // leans on heap-allocated structures
	Parallel  bool // parallel in the paper (see DESIGN.md substitution)
	InTable4  bool // part of the §6 campaigns

	// faultyWhole holds the complete faulty source when the real fault's
	// diff is too large to express as a fragment replacement (C.team3's
	// greedy pickup restructures main).
	faultyWhole string

	once        sync.Once
	compiled    *cc.Compiled
	compileErr  error
	onceF       sync.Once
	compiledF   *cc.Compiled
	compileFErr error
}

// FaultySource reconstructs the original (buggy) source by applying the
// real fault's diff in reverse. It returns an error for fault-free programs
// or if the corrected fragment cannot be found exactly once.
func (p *Program) FaultySource() (string, error) {
	if p.Fault == nil {
		return "", fmt.Errorf("programs: %s has no recorded real fault", p.Name)
	}
	if p.faultyWhole != "" {
		return p.faultyWhole, nil
	}
	n := strings.Count(p.Source, p.Fault.CorrectCode)
	if n != 1 {
		return "", fmt.Errorf("programs: %s: corrective fragment occurs %d times, want 1", p.Name, n)
	}
	return strings.Replace(p.Source, p.Fault.CorrectCode, p.Fault.FaultyCode, 1), nil
}

// Compile compiles the corrected source (cached).
func (p *Program) Compile() (*cc.Compiled, error) {
	p.once.Do(func() {
		p.compiled, p.compileErr = cc.Compile(p.Source)
		if p.compileErr != nil {
			p.compileErr = fmt.Errorf("programs: compile %s: %w", p.Name, p.compileErr)
		}
	})
	return p.compiled, p.compileErr
}

// CompileFaulty compiles the reconstructed faulty source (cached).
func (p *Program) CompileFaulty() (*cc.Compiled, error) {
	p.onceF.Do(func() {
		src, err := p.FaultySource()
		if err != nil {
			p.compileFErr = err
			return
		}
		p.compiledF, p.compileFErr = cc.Compile(src)
		if p.compileFErr != nil {
			p.compileFErr = fmt.Errorf("programs: compile faulty %s: %w", p.Name, p.compileFErr)
		}
	})
	return p.compiledF, p.compileFErr
}

// LineCount returns the number of source lines of the corrected program.
func (p *Program) LineCount() int {
	return len(strings.Split(strings.TrimSpace(p.Source), "\n"))
}

// registry is built once; programs carry compilation caches.
var registry = buildRegistry()

func buildRegistry() []*Program {
	return []*Program{
		{
			Name: "C.team1", Kind: KindCamelot, Source: camelotTeam1Correct,
			Recursive: true, InTable4: true,
			Features: "Recursive algorithm, 1 real fault (corrected)",
			Fault: &RealFault{
				ODCType:     odc.Checking,
				FaultyCode:  "if (nx > 0 && nx <= 7 && ny >= 0 && ny <= 7) {",
				CorrectCode: "if (nx >= 0 && nx <= 7 && ny >= 0 && ny <= 7) {",
				Description: "the board bound uses > instead of >= (the paper's Figure 5 shape): moves landing on file 0 are rejected, so distances into that file read as unreachable",
			},
		},
		{
			Name: "C.team2", Kind: KindCamelot, Source: camelotTeam2Correct,
			InTable4:    true,
			Features:    "Non-recursive algorithm (queue BFS)",
			faultyWhole: camelotTeam2Faulty,
			Fault: &RealFault{
				ODCType:     odc.Algorithm,
				Description: "the general meeting-point search was never implemented: the knight can only pick the king up on the king's own square, so the result is too high whenever meeting part-way is cheaper",
			},
		},
		{
			Name: "C.team3", Kind: KindCamelot, Source: camelotTeam3Correct,
			Features:    "Non-recursive algorithm, greedy pickup (1 real fault, corrected)",
			faultyWhole: camelotTeam3Faulty,
			Fault: &RealFault{
				ODCType:     odc.Algorithm,
				Description: "the pickup square is chosen greedily per knight, independent of the gather square; fails when the jointly optimal meeting point differs",
			},
		},
		{
			Name: "C.team4", Kind: KindCamelot, Source: camelotTeam4Correct,
			Features: "Non-recursive algorithm, explicit seen[] array (1 real fault, corrected)",
			Fault: &RealFault{
				ODCType: odc.Assignment,
				FaultyCode: `    for (p = 1; p < 64; p++) {
        kw[p] = walk(kx, ky, p / 8, p % 8);
    }`,
				CorrectCode: `    for (p = 0; p < 64; p++) {
        kw[p] = walk(kx, ky, p / 8, p % 8);
    }`,
				Description: "the king-walk table fill loop starts at 1 instead of 0 (the wrong for-init assignment, exactly the paper's Figure 3 shape): kw[0] keeps its zero initial value, so walking to or picking up at corner a1 looks free",
			},
		},
		{
			Name: "C.team5", Kind: KindCamelot, Source: camelotTeam5Correct,
			Features: "Non-recursive algorithm, ternary-style helpers (1 real fault, corrected)",
			Fault: &RealFault{
				ODCType: odc.Algorithm,
				FaultyCode: `    ax = (dx > 0) ? dx : -dx;
    return ((dx > 0) ? dx : -dx) + ((dy > 0) ? dy : -dy);`,
				CorrectCode: `    ax = (dx > 0) ? dx : -dx;
    ay = (dy > 0) ? dy : -dy;
    return (ax > ay) ? ax : ay;`,
				Description: "dist(), the king's walking distance in the dedicated single-knight path, sums the two axis distances instead of taking their maximum (the paper's Figure 6 fault: the return statement needs max, not +); single-knight plans with a diagonal king walk are overpriced",
			},
		},
		{
			Name: "C.team6", Kind: KindCamelot, Source: camelotTeam6,
			Features: "Non-recursive algorithm (frontier-wave BFS); additional correct submission",
		},
		{
			Name: "C.team7", Kind: KindCamelot, Source: camelotTeam7,
			Features: "Non-recursive, lazily memoised distance rows; additional correct submission",
		},
		{
			Name: "C.team8", Kind: KindCamelot, Source: camelotTeam8,
			InTable4: true,
			Features: "Non-recursive algorithm (relaxation sweeps)",
		},
		{
			Name: "C.team9", Kind: KindCamelot, Source: camelotTeam9,
			InTable4: true, Dynamic: true,
			Features: "Non-recursive, uses many dynamic structures (heap distance table, linked-list queue)",
		},
		{
			Name: "C.team10", Kind: KindCamelot, Source: camelotTeam10,
			InTable4: true, Recursive: true,
			Features: "Recursive algorithm (distances and search)",
		},
		{
			Name: "JB.team6", Kind: KindJamesB, Source: jamesbTeam6Correct,
			InTable4: true,
			Features: "Non-recursive, table lookup, 1 real fault (corrected)",
			Fault: &RealFault{
				ODCType:     odc.Assignment,
				FaultyCode:  "    char phrase[80];\n    char phrase2[80];",
				CorrectCode: "    char phrase[81];\n    char phrase2[81];",
				Description: "buffers declared one byte short (the paper's Figure 4 fault): the output terminator for 80-character inputs overwrites the first byte of key, shifting every later stack reference's meaning",
			},
		},
		{
			Name: "JB.team7", Kind: KindJamesB, Source: jamesbTeam7Correct,
			Features: "Non-recursive, arithmetic coding (1 real fault, corrected)",
			Fault: &RealFault{
				ODCType: odc.Algorithm,
				FaultyCode: `        shift = (seed + 7 * i) % 26;
        buf[i] = code_char(buf[i], shift);`,
				CorrectCode: `        shift = (seed + 7 * i) % 26;
        if (shift < 0) {
            shift = shift + 26;
        }
        buf[i] = code_char(buf[i], shift);`,
				Description: "the negative-shift normalisation step is missing entirely: any negative seed drives coded characters out of the alphabet",
			},
		},
		{
			Name: "JB.team11", Kind: KindJamesB, Source: jamesbTeam11,
			InTable4: true,
			Features: "Non-recursive, streaming, incremental shift (different algorithm from JB.team6)",
		},
		{
			Name: "SOR", Kind: KindSOR, Source: sorSource,
			InTable4: true, Parallel: true,
			Features: "Real-life program; red-black SOR; largest code, dense array indexing",
		},
	}
}

// All returns every program of the suite, in registry order.
func All() []*Program { return registry }

// ByName finds a program by its paper-style name.
func ByName(name string) (*Program, bool) {
	for _, p := range registry {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}

// Table4Programs returns the eight programs of the §6 campaigns in the
// paper's Table 4 order.
func Table4Programs() []*Program {
	names := []string{"C.team1", "C.team2", "C.team8", "C.team9", "C.team10", "JB.team6", "JB.team11", "SOR"}
	out := make([]*Program, 0, len(names))
	for _, n := range names {
		p, ok := ByName(n)
		if !ok {
			panic("programs: missing " + n)
		}
		out = append(out, p)
	}
	return out
}

// RealFaultPrograms returns the seven programs with seeded real faults, in
// the paper's Table 1 order.
func RealFaultPrograms() []*Program {
	names := []string{"C.team1", "C.team2", "C.team3", "C.team4", "C.team5", "JB.team6", "JB.team7"}
	out := make([]*Program, 0, len(names))
	for _, n := range names {
		p, ok := ByName(n)
		if !ok {
			panic("programs: missing " + n)
		}
		out = append(out, p)
	}
	return out
}
