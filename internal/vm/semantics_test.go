package vm

import (
	"math/rand"
	"testing"
)

// This file property-tests the ALU against a Go reference model: random
// three-register instructions over random register contents must match
// int32/uint32 semantics exactly. Fault injection relies on these
// semantics being right even for operand values programs never produce.

// aluModel mirrors the execute switch for register-register arithmetic.
func aluModel(op Opcode, a, b uint32) (uint32, bool) {
	switch op {
	case OpAdd:
		return a + b, true
	case OpSubf:
		return b - a, true
	case OpMullw:
		return uint32(int32(a) * int32(b)), true
	case OpDivw:
		if b == 0 {
			return 0, false
		}
		return uint32(int32(a) / int32(b)), true
	case OpMod:
		if b == 0 {
			return 0, false
		}
		return uint32(int32(a) % int32(b)), true
	case OpAnd:
		return a & b, true
	case OpOr:
		return a | b, true
	case OpXor:
		return a ^ b, true
	case OpSlw:
		return a << (b & 31), true
	case OpSrw:
		return a >> (b & 31), true
	case OpSraw:
		return uint32(int32(a) >> (b & 31)), true
	}
	return 0, false
}

func TestALUAgainstModel(t *testing.T) {
	ops := []Opcode{OpAdd, OpSubf, OpMullw, OpDivw, OpMod, OpAnd, OpOr, OpXor, OpSlw, OpSrw, OpSraw}
	rng := rand.New(rand.NewSource(601)) // PowerPC 601
	interesting := []uint32{0, 1, 0xffffffff, 0x7fffffff, 0x80000000, 31, 32, 0xdeadbeef}

	runOne := func(op Opcode, a, b uint32) {
		t.Helper()
		want, ok := aluModel(op, a, b)
		m := New(Config{MaxCycles: 100})
		prog := buildImage(append([]Inst{
			{Op: op, RD: 3, RA: 4, RB: 5},
		}, exitSeq()...))
		if err := m.Load(prog); err != nil {
			t.Fatal(err)
		}
		m.SetReg(4, a)
		m.SetReg(5, b)
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if !ok {
			if m.State() != StateCrashed {
				t.Fatalf("%v(%#x,%#x): expected crash, got %v", op, a, b, m.State())
			}
			return
		}
		if m.State() != StateHalted {
			t.Fatalf("%v(%#x,%#x): state %v", op, a, b, m.State())
		}
		if got := uint32(m.ExitStatus()); got != want {
			t.Fatalf("%v(%#x,%#x) = %#x, want %#x", op, a, b, got, want)
		}
	}

	for _, op := range ops {
		for _, a := range interesting {
			for _, b := range interesting {
				runOne(op, a, b)
			}
		}
		for i := 0; i < 50; i++ {
			runOne(op, rng.Uint32(), rng.Uint32())
		}
	}
}

// TestDivOverflowEdge exerces INT_MIN / -1, which traps on many real CPUs;
// the simulator follows Go's wrap-around for int32 overflow... except that
// Go panics on this exact division, so the VM must not reach it through
// int32 arithmetic.
func TestDivOverflowEdge(t *testing.T) {
	m := New(Config{MaxCycles: 100})
	prog := buildImage(append([]Inst{
		{Op: OpDivw, RD: 3, RA: 4, RB: 5},
	}, exitSeq()...))
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	m.SetReg(4, 0x80000000) // INT_MIN
	m.SetReg(5, 0xffffffff) // -1
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Whatever the machine does, it must not panic the host; both a crash
	// and the wrapped quotient INT_MIN are defensible results.
	switch m.State() {
	case StateHalted:
		if uint32(m.ExitStatus()) != 0x80000000 {
			t.Errorf("INT_MIN/-1 = %#x, want wrap to INT_MIN", uint32(m.ExitStatus()))
		}
	case StateCrashed:
		// acceptable: overflow trap
	default:
		t.Errorf("state %v", m.State())
	}
}

func TestCmpAndBranchAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	conds := []Cond{CondLT, CondLE, CondEQ, CondGE, CondGT, CondNE}
	model := func(c Cond, a, b int32) bool {
		switch c {
		case CondLT:
			return a < b
		case CondLE:
			return a <= b
		case CondEQ:
			return a == b
		case CondGE:
			return a >= b
		case CondGT:
			return a > b
		case CondNE:
			return a != b
		}
		return false
	}
	for i := 0; i < 300; i++ {
		a := int32(rng.Uint32())
		b := int32(rng.Uint32())
		if i%4 == 0 {
			b = a // force equality often
		}
		c := conds[rng.Intn(len(conds))]
		// r3 = 1 if branch taken else 0.
		prog := buildImage(append([]Inst{
			{Op: OpCmpw, RD: 0, RA: 4, RB: 5},
			{Op: OpAddi, RD: 3, RA: RegZero, Imm: 0},
			{Op: OpBc, RD: uint8(c), RA: 0, Imm: 8},
			{Op: OpB, Off26: 8},
			{Op: OpAddi, RD: 3, RA: RegZero, Imm: 1},
		}, exitSeq()...))
		m := New(Config{MaxCycles: 100})
		if err := m.Load(prog); err != nil {
			t.Fatal(err)
		}
		m.SetReg(4, uint32(a))
		m.SetReg(5, uint32(b))
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		want := int32(0)
		if model(c, a, b) {
			want = 1
		}
		if m.ExitStatus() != want {
			t.Fatalf("cmp %d %s %d: taken=%d, want %d", a, c, b, m.ExitStatus(), want)
		}
	}
}
