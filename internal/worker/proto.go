// Package worker is the out-of-process execution sandbox of the campaign
// layer: units run in supervised worker subprocesses that speak a
// length-prefixed, versioned binary protocol over stdin/stdout, so a hard
// host failure — an OS OOM-kill, a runaway allocation, a stuck syscall —
// costs one worker process and at most one in-flight unit, never the
// campaign.
//
// The package has two halves. Serve is the worker side: a re-exec'd binary
// (swifi -worker-mode and friends) reads a Spec, builds a Runner from it,
// and answers unit-execution requests until told to shut down, heartbeating
// the whole time. Pool is the supervisor side: it owns a fleet of worker
// processes and enforces the robustness policy — heartbeat and wall-clock
// deadlines, restart with exponential backoff, at-most-N redelivery before
// a unit is quarantined, and a circuit breaker that gives up on process
// isolation when worker churn shows the host cannot sustain it.
//
// The wire protocol, version 2 (all integers little-endian):
//
//	frame    length u32 | type u8 | payload | crc32 u32
//	         (length counts type+payload+crc; crc32 is IEEE over type+payload)
//
//	hello    version u16 | heartbeat-ms u32 | mem-quota u64 |
//	         fingerprint u64 | kind-len u16 | kind | spec-len u32 | spec
//	ready    version u16 | fingerprint u64 | units u32
//	exec     unit u32
//	verdict  unit u32 | mode u8 | flags u8 | last u8 | payload-len u32 | payload
//	heartbeat (empty)
//	shutdown  (empty)
//	error    message (UTF-8)
//
// The supervisor opens with hello; the worker answers ready after building
// its Runner, echoing the negotiated version and the fingerprint of the
// plan it reconstructed — a supervisor whose fingerprint differs is talking
// to a worker from a different build or configuration and must not trust
// its unit numbering. Verdict mode/flags use the journal.Outcome wire
// encoding, so a verdict appends to a campaign journal byte-for-byte. A
// verdict with last set is the worker's final answer (it recycles itself —
// e.g. its RSS crossed the memory quota) and the supervisor respawns it
// without penalty. Frames above MaxFrame, unknown types, short reads, and
// checksum mismatches are protocol errors: the supervisor kills the worker
// and redelivers. Version 2 put the trailing CRC on the pipe frames too
// (version 1 had it only on the fabric's TCP framing), so a corrupted or
// torn frame severs and restarts the worker through the ordinary
// redelivery machinery instead of desynchronizing the stream — stdin and
// stdout are byte streams like any other, and the chaos plane now abuses
// them like any other.
package worker

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"time"

	"repro/internal/journal"
)

// PayloadFingerprint fingerprints a spec whose payload alone determines the
// unit numbering: fnv64a over the kind and the payload bytes. Simple
// fan-out specs (faultgen plans, progrun selftests) use this on both sides
// of the handshake; campaign specs use a plan-level fingerprint instead
// (see internal/campaign), which also covers state derived from the
// payload, like calibrated budgets.
func PayloadFingerprint(kind string, payload []byte) uint64 {
	h := fnv.New64a()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(payload)
	return h.Sum64()
}

const (
	// ProtocolVersion is the frame-format version sent in hello and echoed
	// in ready, so a mixed-build supervisor/worker pair fails the handshake
	// instead of mis-parsing frames. Version 2 adopted the CRC-framed wire
	// format on the pipes (the fabric already spoke it on TCP).
	ProtocolVersion = 2

	// MaxFrame bounds any frame's length prefix. A frame claiming more is
	// garbage (a worker writing junk to stdout, a supervisor reading from
	// the wrong process) and is rejected before any allocation.
	MaxFrame = 16 << 20
)

// Message types.
const (
	msgHello uint8 = 1 + iota
	msgReady
	msgExec
	msgVerdict
	msgHeartbeat
	msgShutdown
	msgError
)

// Spec tells a worker what work it will be asked to execute. Kind selects
// the runner factory branch (each binary registers the kinds it can serve);
// Payload is kind-specific (JSON in practice) and must fully determine the
// unit numbering, because supervisor and worker derive it independently;
// Fingerprint is the supervisor's hash of that numbering, which the worker
// must reproduce for the handshake to succeed.
type Spec struct {
	Kind        string
	Fingerprint uint64
	Payload     []byte
}

// hello is the supervisor's opening frame.
type hello struct {
	Version           uint16
	HeartbeatInterval time.Duration
	MemQuota          uint64
	Spec              Spec
}

// ready is the worker's handshake answer.
type ready struct {
	Version     uint16
	Fingerprint uint64
	Units       uint32
}

// verdict is one completed unit.
type verdict struct {
	Unit    uint32
	Outcome journal.Outcome
	Last    bool // the worker exits after this verdict (self-recycle)
	Payload []byte
}

// WriteFrame emits one frame. Callers serialise writes themselves. It is
// exported because internal/fabric speaks the same frame format over TCP.
func WriteFrame(w io.Writer, typ uint8, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("worker: frame type %d overflows MaxFrame (%d bytes)", typ, len(payload))
	}
	buf := make([]byte, 5+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(1+len(payload)))
	buf[4] = typ
	copy(buf[5:], payload)
	_, err := w.Write(buf)
	return err
}

// readChunk bounds how much ReadFrame allocates ahead of the bytes that
// have actually arrived.
const readChunk = 64 << 10

// ReadFrame reads one frame, rejecting empty and oversized length prefixes.
// The payload buffer grows in chunks as bytes arrive instead of trusting
// the length prefix up front, so a corrupt prefix on a dying peer costs at
// most one chunk, never MaxFrame.
func ReadFrame(r io.Reader) (typ uint8, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n == 0 || n > MaxFrame {
		return 0, nil, fmt.Errorf("worker: bad frame length %d", n)
	}
	size := n
	if size > readChunk {
		size = readChunk
	}
	buf := make([]byte, size)
	read := 0
	for {
		m, rerr := io.ReadFull(r, buf[read:])
		read += m
		if rerr != nil {
			if rerr == io.EOF {
				// A frame header with no body is torn, not a clean end.
				rerr = io.ErrUnexpectedEOF
			}
			return 0, nil, rerr
		}
		if read == n {
			return buf[0], buf[1:], nil
		}
		grow := n - read
		if grow > readChunk {
			grow = readChunk
		}
		buf = append(buf, make([]byte, grow)...)
	}
}

// ErrFrameCRC marks a frame whose trailing checksum did not match its
// bytes: the frame was poisoned in transit (a corrupting link, a hostile
// peer, a torn TCP segment boundary). Receivers that can re-establish their
// connection — the fabric — treat it as a connection failure, not a
// protocol error: the sender is healthy, the link is not.
var ErrFrameCRC = errors.New("worker: frame checksum mismatch")

// WriteFrameCRC emits one CRC-protected frame: the plain frame layout with
// a trailing IEEE CRC32 over type+payload. Both transports speak it — the
// fabric on TCP since protocol v2 of the wire spec, the worker pipes since
// ProtocolVersion 2 — so a flipped bit anywhere between the two processes
// is detected at the frame boundary instead of mis-parsed downstream.
//
//	length u32 | type u8 | payload | crc32 u32   (length counts type+payload+crc)
func WriteFrameCRC(w io.Writer, typ uint8, payload []byte) error {
	if len(payload)+5 > MaxFrame {
		return fmt.Errorf("worker: frame type %d overflows MaxFrame (%d bytes)", typ, len(payload))
	}
	buf := make([]byte, 9+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(1+len(payload)+4))
	buf[4] = typ
	copy(buf[5:], payload)
	crc := crc32.ChecksumIEEE(buf[4 : 5+len(payload)])
	binary.LittleEndian.PutUint32(buf[5+len(payload):], crc)
	_, err := w.Write(buf)
	return err
}

// ReadFrameCRC reads one CRC-protected frame and verifies its trailing
// checksum, returning ErrFrameCRC (wrapped) on mismatch. Length-prefix
// handling is ReadFrame's: chunked allocation, MaxFrame bound, torn-tail
// detection.
func ReadFrameCRC(r io.Reader) (typ uint8, payload []byte, err error) {
	typ, body, err := ReadFrame(r)
	if err != nil {
		return 0, nil, err
	}
	if len(body) < 4 {
		return 0, nil, fmt.Errorf("worker: CRC frame type %d has %d-byte body, need at least the checksum", typ, len(body))
	}
	payload = body[:len(body)-4]
	want := binary.LittleEndian.Uint32(body[len(body)-4:])
	crc := crc32.New(crc32.IEEETable)
	crc.Write([]byte{typ})
	crc.Write(payload)
	if crc.Sum32() != want {
		return 0, nil, fmt.Errorf("%w (frame type %d, %d bytes)", ErrFrameCRC, typ, len(payload))
	}
	return typ, payload, nil
}

func encodeHello(h hello) []byte {
	kind := []byte(h.Spec.Kind)
	buf := make([]byte, 0, 24+len(kind)+len(h.Spec.Payload))
	buf = binary.LittleEndian.AppendUint16(buf, h.Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.HeartbeatInterval/time.Millisecond))
	buf = binary.LittleEndian.AppendUint64(buf, h.MemQuota)
	buf = binary.LittleEndian.AppendUint64(buf, h.Spec.Fingerprint)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(kind)))
	buf = append(buf, kind...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.Spec.Payload)))
	buf = append(buf, h.Spec.Payload...)
	return buf
}

func decodeHello(b []byte) (hello, error) {
	var h hello
	if len(b) < 24 {
		return h, fmt.Errorf("worker: hello frame too short (%d bytes)", len(b))
	}
	h.Version = binary.LittleEndian.Uint16(b[0:2])
	h.HeartbeatInterval = time.Duration(binary.LittleEndian.Uint32(b[2:6])) * time.Millisecond
	h.MemQuota = binary.LittleEndian.Uint64(b[6:14])
	h.Spec.Fingerprint = binary.LittleEndian.Uint64(b[14:22])
	kn := int(binary.LittleEndian.Uint16(b[22:24]))
	b = b[24:]
	if len(b) < kn+4 {
		return h, fmt.Errorf("worker: hello frame truncated in kind")
	}
	h.Spec.Kind = string(b[:kn])
	b = b[kn:]
	pn := int(binary.LittleEndian.Uint32(b[:4]))
	b = b[4:]
	if len(b) != pn {
		return h, fmt.Errorf("worker: hello spec length %d, frame holds %d", pn, len(b))
	}
	h.Spec.Payload = b
	return h, nil
}

func encodeReady(r ready) []byte {
	buf := make([]byte, 0, 14)
	buf = binary.LittleEndian.AppendUint16(buf, r.Version)
	buf = binary.LittleEndian.AppendUint64(buf, r.Fingerprint)
	buf = binary.LittleEndian.AppendUint32(buf, r.Units)
	return buf
}

func decodeReady(b []byte) (ready, error) {
	if len(b) != 14 {
		return ready{}, fmt.Errorf("worker: ready frame is %d bytes, want 14", len(b))
	}
	return ready{
		Version:     binary.LittleEndian.Uint16(b[0:2]),
		Fingerprint: binary.LittleEndian.Uint64(b[2:10]),
		Units:       binary.LittleEndian.Uint32(b[10:14]),
	}, nil
}

func encodeVerdict(v verdict) []byte {
	buf := make([]byte, 0, 11+len(v.Payload))
	buf = binary.LittleEndian.AppendUint32(buf, v.Unit)
	buf = append(buf, v.Outcome.Mode, v.Outcome.Flags(), boolByte(v.Last))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Payload)))
	buf = append(buf, v.Payload...)
	return buf
}

func decodeVerdict(b []byte) (verdict, error) {
	var v verdict
	if len(b) < 11 {
		return v, fmt.Errorf("worker: verdict frame too short (%d bytes)", len(b))
	}
	v.Unit = binary.LittleEndian.Uint32(b[0:4])
	v.Outcome = journal.DecodeOutcome(b[4], b[5])
	v.Last = b[6] != 0
	pn := int(binary.LittleEndian.Uint32(b[7:11]))
	if len(b)-11 != pn {
		return v, fmt.Errorf("worker: verdict payload length %d, frame holds %d", pn, len(b)-11)
	}
	if pn > 0 {
		v.Payload = b[11:]
	}
	return v, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
