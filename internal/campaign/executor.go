package campaign

import (
	"fmt"
	"sync"

	"repro/internal/cc"
	"repro/internal/fault"
	"repro/internal/golden"
	"repro/internal/injector"
	"repro/internal/parallel"
	"repro/internal/programs"
	"repro/internal/vm"
	"repro/internal/workload"
)

// This file is the parallel campaign executor. Every injection of the
// paper's experiments is an independent run — a freshly rebooted machine, a
// deterministic input, one armed fault — so the execution of a campaign
// shards perfectly across workers. The design keeps all randomness in
// planning, which stays serial, and fans out only the runs: results are
// written into per-unit slots and aggregated in planning order, so a
// campaign's Result is bit-identical for any worker count.
//
// The per-worker machinePool supplies the other half of the speed-up:
// instead of allocating a fresh 1 MiB machine per injection (the literal
// reading of "the target system is rebooted between injections"), each
// worker keeps one loaded machine per compiled program and reboots it with
// vm.(*Machine).Reset, which restores the post-Load state without
// reallocating the memory or decode arrays.

// machinePool caches loaded machines per compiled program. Each executor
// worker owns exactly one pool, so pools need no locking.
type machinePool struct {
	machines map[*cc.Compiled]*vm.Machine
}

func newMachinePool() *machinePool {
	return &machinePool{machines: make(map[*cc.Compiled]*vm.Machine)}
}

// acquire returns a ready (rebooted) machine for the compiled program with
// the input and watchdog budget installed.
func (p *machinePool) acquire(c *cc.Compiled, in programs.Input, maxCycles uint64) (*vm.Machine, error) {
	m, ok := p.machines[c]
	if !ok {
		m = vm.New(vm.Config{})
		if err := m.Load(c.Prog.Image); err != nil {
			return nil, err
		}
		p.machines[c] = m
	} else if err := m.Reset(); err != nil {
		return nil, err
	}
	m.SetMaxCycles(maxCycles)
	m.SetInput(in.Ints)
	m.SetByteInput(in.Bytes)
	return m, nil
}

// restored hands out a pooled machine rewound to a golden-run checkpoint
// instead of rebooted: the fast-forward path of the checkpointed executor.
func (p *machinePool) restored(c *cc.Compiled, cp *golden.Checkpoint, maxCycles uint64) (*vm.Machine, error) {
	m, ok := p.machines[c]
	if !ok {
		m = vm.New(vm.Config{})
		if err := m.Load(c.Prog.Image); err != nil {
			return nil, err
		}
		p.machines[c] = m
	}
	if err := m.Restore(cp.Snap); err != nil {
		return nil, err
	}
	m.SetMaxCycles(maxCycles)
	return m, nil
}

// runClean executes one clean run on a pooled machine.
func (p *machinePool) runClean(c *cc.Compiled, cs *workload.Case, maxCycles uint64) (RunResult, error) {
	m, err := p.acquire(c, cs.Input, maxCycles)
	if err != nil {
		return RunResult{}, err
	}
	if _, err := m.Run(); err != nil {
		return RunResult{}, err
	}
	_, res := classify(m, cs.Golden)
	return res, nil
}

// runWithFault executes one injected run on a pooled machine: the straight
// path — reboot, arm, replay the whole run.
func (p *machinePool) runWithFault(c *cc.Compiled, cs *workload.Case, f *fault.Fault, mode injector.Mode, maxCycles uint64) (RunResult, error) {
	m, err := p.acquire(c, cs.Input, maxCycles)
	if err != nil {
		return RunResult{}, err
	}
	s, err := injector.Arm(m, mode, f)
	if err != nil {
		return RunResult{}, err
	}
	if _, err := m.Run(); err != nil {
		return RunResult{}, err
	}
	_, res := classify(m, cs.Golden)
	res.Activations = s.Activations()
	return res, nil
}

// runFastForward executes one injection over the golden record: dormant
// faults reuse the recorded outcome outright, activated faults restore the
// nearest checkpoint before the first trigger arrival and run only the
// suffix. The outcome is identical to runWithFault (see the soundness
// argument in package golden and TestFastForwardMatchesStraightRun); only
// RunResult.Activations degrades to an at-least-once indicator when the
// fault was armed leanly.
func (p *machinePool) runFastForward(u *runUnit) (RunResult, error) {
	if u.f.Trigger.Kind != fault.TriggerOnLocation {
		// At-start faults apply before the first instruction; there is no
		// fault-free prefix to skip.
		return p.runWithFault(u.c, u.cs, u.f, u.mode, u.budget)
	}
	rec, err := u.gold.store.Run(u.c, u.cs, u.budget, quantileMarks(u.budget), u.gold.ws)
	if err != nil {
		return RunResult{}, err
	}
	applying, safe := rec.RestorePoint(u.f.TriggerAddrs(), uint64(u.f.Trigger.Skip))
	if !applying {
		// Dormant: the corruption never applies, so the injected run is the
		// golden run. Arm on a rebooted machine anyway — arming has its own
		// observable failures (e.g. breakpoint exhaustion) that must stay
		// identical to the straight path — then skip the execution.
		m, err := p.acquire(u.c, u.cs.Input, u.budget)
		if err != nil {
			return RunResult{}, err
		}
		if _, err := injector.Arm(m, u.mode, u.f); err != nil {
			return RunResult{}, err
		}
		return resultFromRecord(rec, u.cs.Golden), nil
	}
	cp := rec.Nearest(safe)
	if cp == nil {
		return p.runWithFault(u.c, u.cs, u.f, u.mode, u.budget)
	}
	m, err := p.restored(u.c, cp, u.budget)
	if err != nil {
		return RunResult{}, err
	}
	lean, err := injector.ArmLean(m, u.mode, u.f)
	if err != nil {
		return RunResult{}, err
	}
	var s *injector.Session
	if !lean {
		if s, err = injector.Arm(m, u.mode, u.f); err != nil {
			return RunResult{}, err
		}
	}
	if _, err := m.Run(); err != nil {
		return RunResult{}, err
	}
	_, res := classify(m, u.cs.Golden)
	if lean {
		// Planted corruptions are not intercepted, so there is no exact
		// count; the restore point guarantees at least one application.
		res.Activations = 1
	} else {
		res.Activations = s.Activations()
	}
	return res, nil
}

// goldenSource tells the executor how to fast-forward a unit: which store
// holds the golden records and the watch set they were (or will be)
// recorded under. Units with a nil source take the straight path.
type goldenSource struct {
	store *golden.Store
	ws    golden.WatchSet
}

// newGoldenSource builds the per-program source from every planned fault's
// trigger addresses. It returns nil — disabling fast-forward — when no
// fault is location-triggered.
func newGoldenSource(faults ...[]fault.Fault) *goldenSource {
	var addrs []uint32
	for _, fs := range faults {
		for fi := range fs {
			f := &fs[fi]
			if f.Trigger.Kind == fault.TriggerOnLocation {
				addrs = append(addrs, f.TriggerAddrs()...)
			}
		}
	}
	if len(addrs) == 0 {
		return nil
	}
	return &goldenSource{store: golden.Shared, ws: golden.NewWatchSet(addrs)}
}

// runUnit is one injection of a planned campaign: the (program, fault,
// input) triple plus its calibrated watchdog budget and the index of the
// Entry it aggregates into. cs points into the canonical case slice — the
// golden store keys records by that pointer. A non-nil gold enables the
// checkpointed fast path.
type runUnit struct {
	program string
	c       *cc.Compiled
	f       *fault.Fault
	cs      *workload.Case
	caseIx  int
	budget  uint64
	mode    injector.Mode
	entry   int
	gold    *goldenSource
}

// unitOutcome is the per-run data an Entry aggregates.
type unitOutcome struct {
	mode      FailureMode
	activated bool
}

// executeUnits fans the planned units out over the worker pool and returns
// their outcomes in unit order. Each worker keeps its own machine pool.
func executeUnits(workers int, units []runUnit) ([]unitOutcome, error) {
	out := make([]unitOutcome, len(units))
	pools := make([]*machinePool, parallel.DefaultWorkers(workers))
	err := parallel.ForEach(workers, len(units), func(w, i int) error {
		if pools[w] == nil {
			pools[w] = newMachinePool()
		}
		u := &units[i]
		var r RunResult
		var err error
		if u.gold != nil {
			r, err = pools[w].runFastForward(u)
		} else {
			r, err = pools[w].runWithFault(u.c, u.cs, u.f, u.mode, u.budget)
		}
		if err != nil {
			return fmt.Errorf("campaign: %s %s case %d: %w", u.program, u.f.ID, u.caseIx, err)
		}
		out[i] = unitOutcome{mode: r.Mode, activated: r.Activations > 0}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunCleanBatch executes the program over every case with no fault armed,
// fanning the runs across workers with pooled machines. Results are in
// case order, identical to calling RunClean per case.
func RunCleanBatch(c *cc.Compiled, cases []workload.Case, maxCycles uint64, workers int) ([]RunResult, error) {
	pools := make([]*machinePool, parallel.DefaultWorkers(workers))
	return parallel.Map(workers, len(cases), func(w, i int) (RunResult, error) {
		if pools[w] == nil {
			pools[w] = newMachinePool()
		}
		return pools[w].runClean(c, &cases[i], maxCycles)
	})
}

// Watchdog budget formula (see CalibrateCycles): budget = clean-run cycles
// times budgetFactor plus budgetSlack.
const (
	budgetFactor = 3
	budgetSlack  = 50_000
)

// quantileMarks derives the cycle counts the golden runner checkpoints at
// for triggers not tied to a location: the quartiles of the calibrated
// clean-run length, recovered by inverting the budget formula. Location
// faults never use these (the first-arrival checkpoint is always at least
// as good), but skip/random-trigger policies added later can.
func quantileMarks(budget uint64) []uint64 {
	if budget <= budgetSlack {
		return nil
	}
	clean := (budget - budgetSlack) / budgetFactor
	var marks []uint64
	for _, q := range [...]uint64{clean / 4, clean / 2, 3 * clean / 4} {
		if q > 0 && (len(marks) == 0 || q > marks[len(marks)-1]) {
			marks = append(marks, q)
		}
	}
	return marks
}

// calibKey identifies one calibration: budgets depend only on the compiled
// program and the exact case set. Case sets obtained through
// workload.Cached are canonical per (kind, n, seed), so repeated campaigns
// at the same scale and seed hit the cache.
type calibKey struct {
	c     *cc.Compiled
	first *workload.Case
	n     int
}

var calibCache sync.Map // calibKey -> []uint64

// CalibrateCyclesWorkers is CalibrateCycles with an explicit worker count
// (0 selects runtime.GOMAXPROCS(0), 1 the serial path). Budgets are cached
// per (compiled program, case set), so repeated campaigns on the same
// workload do not recalibrate; the returned slice is shared and must be
// treated as read-only.
func CalibrateCyclesWorkers(c *cc.Compiled, cases []workload.Case, workers int) ([]uint64, error) {
	if len(cases) == 0 {
		return nil, nil
	}
	key := calibKey{c: c, first: &cases[0], n: len(cases)}
	if v, ok := calibCache.Load(key); ok {
		return v.([]uint64), nil
	}
	pools := make([]*machinePool, parallel.DefaultWorkers(workers))
	budgets, err := parallel.Map(workers, len(cases), func(w, i int) (uint64, error) {
		if pools[w] == nil {
			pools[w] = newMachinePool()
		}
		res, err := pools[w].runClean(c, &cases[i], vm.DefaultMaxCycles)
		if err != nil {
			return 0, err
		}
		if res.Mode != Correct {
			return 0, fmt.Errorf("campaign: clean run %d not correct (mode %v, state %v)", i, res.Mode, res.State)
		}
		return res.Cycles*budgetFactor + budgetSlack, nil
	})
	if err != nil {
		return nil, err
	}
	calibCache.Store(key, budgets)
	return budgets, nil
}
