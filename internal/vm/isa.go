// Package vm implements a 32-bit big-endian, PowerPC-flavoured register
// machine used as the fault-injection target in this repository.
//
// The machine stands in for the PowerPC 601 processors of the Parsytec
// PowerXplorer used in the paper. It deliberately implements the features the
// paper's methodology depends on:
//
//   - a real binary instruction encoding, so that bit-level corruption of
//     instruction words produces either a semantically different instruction
//     or an illegal-instruction exception, exactly as on real hardware;
//   - two hardware instruction-address breakpoint registers (the PPC 601 has
//     two), which bound the non-intrusive fault triggers available to the
//     injector and reproduce the stack-shift emulation limitation of §5;
//   - fetch/load/store bus hooks, the mechanism behind Xception's "error
//     inserted in the data fetched" fault locations;
//   - an exception model (illegal opcode, alignment, memory protection,
//     division by zero) that yields the paper's Crash failure mode, and a
//     cycle watchdog that yields the Hang failure mode.
package vm

import "fmt"

// Opcode identifies one machine instruction. Opcodes occupy the top 6 bits of
// every 32-bit instruction word, so values must stay below 64.
type Opcode uint8

// Instruction opcodes. The mnemonics follow PowerPC conventions where the
// paper's listings use them (addi, lwz, stw, cmp, bc, bl, blr, ...).
//
// OpIllegal is deliberately zero: an all-zero instruction word (a common
// result of memory corruption) decodes as an illegal instruction.
const (
	OpIllegal Opcode = 0

	// D-form: op | rD(5) | rA(5) | imm(16).
	OpAddi  Opcode = 1  // rD = rA + simm
	OpAddis Opcode = 2  // rD = rA + (simm << 16)
	OpMulli Opcode = 3  // rD = rA * simm
	OpAndi  Opcode = 4  // rD = rA & uimm
	OpOri   Opcode = 5  // rD = rA | uimm
	OpXori  Opcode = 6  // rD = rA ^ uimm
	OpLwz   Opcode = 7  // rD = mem32[rA + simm]
	OpStw   Opcode = 8  // mem32[rA + simm] = rD
	OpLbz   Opcode = 9  // rD = mem8[rA + simm]
	OpStb   Opcode = 10 // mem8[rA + simm] = rD & 0xff
	OpCmpwi Opcode = 11 // crf(rD>>2) = compare(rA, simm)

	// X-form: op | rD(5) | rA(5) | rB(5) | pad(11).
	OpAdd   Opcode = 16 // rD = rA + rB
	OpSubf  Opcode = 17 // rD = rB - rA (PowerPC subtract-from order)
	OpMullw Opcode = 18 // rD = rA * rB
	OpDivw  Opcode = 19 // rD = rA / rB (signed; rB==0 raises ExcDivZero)
	OpAnd   Opcode = 20 // rD = rA & rB
	OpOr    Opcode = 21 // rD = rA | rB
	OpXor   Opcode = 22 // rD = rA ^ rB
	OpSlw   Opcode = 23 // rD = rA << (rB & 31)
	OpSrw   Opcode = 24 // rD = logical rA >> (rB & 31)
	OpSraw  Opcode = 25 // rD = arithmetic rA >> (rB & 31)
	OpNeg   Opcode = 26 // rD = -rA
	OpCmpw  Opcode = 27 // crf(rD>>2) = compare(rA, rB)
	OpLwzx  Opcode = 28 // rD = mem32[rA + rB]
	OpStwx  Opcode = 29 // mem32[rA + rB] = rD
	OpLbzx  Opcode = 30 // rD = mem8[rA + rB]
	OpStbx  Opcode = 31 // mem8[rA + rB] = rD & 0xff
	OpMod   Opcode = 32 // rD = rA % rB (signed remainder; rB==0 raises ExcDivZero)

	// Branch and special forms.
	OpB    Opcode = 40 // I-form: pc += simm26 (byte offset)
	OpBl   Opcode = 41 // I-form: lr = pc+4; pc += simm26
	OpBc   Opcode = 42 // B-form: op | cond(5) | crf(5) | simm16: conditional pc += simm
	OpBlr  Opcode = 43 // pc = lr
	OpMflr Opcode = 44 // rD = lr
	OpMtlr Opcode = 45 // lr = rD
	OpSc   Opcode = 46 // system call; number in r10, args/result in r3..
	OpTrap Opcode = 47 // software breakpoint (used by the intrusive trigger mode)
	OpNop  Opcode = 48 // no operation
)

// Cond is the condition selector of a conditional branch (OpBc).
type Cond uint8

// Branch conditions. They test the condition-register field written by the
// most recent cmpw/cmpwi targeting that field.
const (
	CondLT Cond = 1 // branch if less-than
	CondLE Cond = 2 // branch if less-or-equal
	CondEQ Cond = 3 // branch if equal
	CondGE Cond = 4 // branch if greater-or-equal
	CondGT Cond = 5 // branch if greater-than
	CondNE Cond = 6 // branch if not-equal
)

var condNames = map[Cond]string{
	CondLT: "lt",
	CondLE: "le",
	CondEQ: "eq",
	CondGE: "ge",
	CondGT: "gt",
	CondNE: "ne",
}

// String returns the assembler mnemonic of the condition.
func (c Cond) String() string {
	if s, ok := condNames[c]; ok {
		return s
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Valid reports whether c is a defined branch condition.
func (c Cond) Valid() bool {
	_, ok := condNames[c]
	return ok
}

// Inst is a decoded machine instruction. RD, RA, RB are register numbers;
// Imm is the 16-bit immediate (sign- or zero-extended according to the
// opcode); Off26 is the 26-bit signed byte offset of I-form branches.
type Inst struct {
	Op    Opcode
	RD    uint8
	RA    uint8
	RB    uint8
	Imm   int32
	Off26 int32
}

// instForm classifies the encoding layout of an opcode.
type instForm int

const (
	formNone instForm = iota
	formD             // rD, rA, imm16
	formDU            // rD, rA, uimm16 (logical immediates)
	formX             // rD, rA, rB
	formXD            // rD, rA (two-register)
	formI             // off26
	formB             // cond, crf, imm16
	formR             // rD only (mflr/mtlr)
	form0             // no operands (blr, sc, trap, nop)
)

var opForms = map[Opcode]instForm{
	OpAddi: formD, OpAddis: formD, OpMulli: formD,
	OpAndi: formDU, OpOri: formDU, OpXori: formDU,
	OpLwz: formD, OpStw: formD, OpLbz: formD, OpStb: formD,
	OpCmpwi: formD,
	OpAdd:   formX, OpSubf: formX, OpMullw: formX, OpDivw: formX, OpMod: formX,
	OpAnd: formX, OpOr: formX, OpXor: formX,
	OpSlw: formX, OpSrw: formX, OpSraw: formX,
	OpNeg: formXD, OpCmpw: formX,
	OpLwzx: formX, OpStwx: formX, OpLbzx: formX, OpStbx: formX,
	OpB: formI, OpBl: formI, OpBc: formB,
	OpBlr: form0, OpMflr: formR, OpMtlr: formR,
	OpSc: form0, OpTrap: form0, OpNop: form0,
}

var opNames = map[Opcode]string{
	OpAddi: "addi", OpAddis: "addis", OpMulli: "mulli",
	OpAndi: "andi", OpOri: "ori", OpXori: "xori",
	OpLwz: "lwz", OpStw: "stw", OpLbz: "lbz", OpStb: "stb",
	OpCmpwi: "cmpwi",
	OpAdd:   "add", OpSubf: "subf", OpMullw: "mullw", OpDivw: "divw", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpSlw: "slw", OpSrw: "srw", OpSraw: "sraw",
	OpNeg: "neg", OpCmpw: "cmpw",
	OpLwzx: "lwzx", OpStwx: "stwx", OpLbzx: "lbzx", OpStbx: "stbx",
	OpB: "b", OpBl: "bl", OpBc: "bc",
	OpBlr: "blr", OpMflr: "mflr", OpMtlr: "mtlr",
	OpSc: "sc", OpTrap: "trap", OpNop: "nop",
}

// String returns the assembler mnemonic of the opcode.
func (o Opcode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// opFormTab is the array-indexed mirror of opForms; decoding runs once per
// executed instruction, so the hot path must not hash.
var opFormTab = buildOpFormTab()

func buildOpFormTab() [64]instForm {
	var t [64]instForm
	for op, f := range opForms {
		t[op] = f
	}
	return t
}

// condValidTab mirrors condNames for the decoder's hot path.
var condValidTab = buildCondValidTab()

func buildCondValidTab() [32]bool {
	var t [32]bool
	for c := range condNames {
		t[c] = true
	}
	return t
}

// Form returns the encoding layout of the opcode, or formNone if undefined.
func (o Opcode) form() instForm {
	if o >= 64 {
		return formNone
	}
	return opFormTab[o]
}

// Defined reports whether o is a defined opcode.
func (o Opcode) Defined() bool {
	_, ok := opForms[o]
	return ok
}

// Encode packs the instruction into its 32-bit binary word.
func Encode(in Inst) uint32 {
	w := uint32(in.Op) << 26
	switch in.Op.form() {
	case formD, formDU, formB:
		w |= uint32(in.RD&31) << 21
		w |= uint32(in.RA&31) << 16
		w |= uint32(uint16(in.Imm))
	case formX:
		w |= uint32(in.RD&31) << 21
		w |= uint32(in.RA&31) << 16
		w |= uint32(in.RB&31) << 11
	case formXD:
		w |= uint32(in.RD&31) << 21
		w |= uint32(in.RA&31) << 16
	case formI:
		w |= uint32(in.Off26) & 0x03ffffff
	case formR:
		w |= uint32(in.RD&31) << 21
	}
	return w
}

// Decode unpacks a 32-bit instruction word. It returns an error when the word
// does not decode to a defined instruction; executing such a word raises
// ExcIllegal.
func Decode(w uint32) (Inst, error) {
	op := Opcode(w >> 26)
	form := opFormTab[op&63]
	if form == formNone {
		return Inst{}, fmt.Errorf("illegal opcode %d in word %#08x", uint8(op), w)
	}
	in := Inst{Op: op}
	switch form {
	case formD, formB:
		in.RD = uint8(w >> 21 & 31)
		in.RA = uint8(w >> 16 & 31)
		in.Imm = int32(int16(uint16(w)))
	case formDU:
		in.RD = uint8(w >> 21 & 31)
		in.RA = uint8(w >> 16 & 31)
		in.Imm = int32(uint16(w))
	case formX:
		in.RD = uint8(w >> 21 & 31)
		in.RA = uint8(w >> 16 & 31)
		in.RB = uint8(w >> 11 & 31)
	case formXD:
		in.RD = uint8(w >> 21 & 31)
		in.RA = uint8(w >> 16 & 31)
	case formI:
		off := w & 0x03ffffff
		if off&0x02000000 != 0 { // sign-extend 26 bits
			off |= 0xfc000000
		}
		in.Off26 = int32(off)
	case formR:
		in.RD = uint8(w >> 21 & 31)
	}
	if op == OpBc {
		if !condValidTab[in.RD&31] {
			return Inst{}, fmt.Errorf("illegal branch condition %d in word %#08x", in.RD, w)
		}
		if in.RA > 7 {
			return Inst{}, fmt.Errorf("illegal condition field %d in word %#08x", in.RA, w)
		}
	}
	return in, nil
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	switch in.Op.form() {
	case formD:
		switch in.Op {
		case OpLwz, OpStw, OpLbz, OpStb:
			return fmt.Sprintf("%s r%d,%d(r%d)", in.Op, in.RD, in.Imm, in.RA)
		case OpCmpwi:
			return fmt.Sprintf("cmpwi cr%d,r%d,%d", in.RD>>2, in.RA, in.Imm)
		}
		return fmt.Sprintf("%s r%d,r%d,%d", in.Op, in.RD, in.RA, in.Imm)
	case formDU:
		return fmt.Sprintf("%s r%d,r%d,%d", in.Op, in.RD, in.RA, uint16(in.Imm))
	case formX:
		if in.Op == OpCmpw {
			return fmt.Sprintf("cmpw cr%d,r%d,r%d", in.RD>>2, in.RA, in.RB)
		}
		return fmt.Sprintf("%s r%d,r%d,r%d", in.Op, in.RD, in.RA, in.RB)
	case formXD:
		return fmt.Sprintf("%s r%d,r%d", in.Op, in.RD, in.RA)
	case formI:
		return fmt.Sprintf("%s %+d", in.Op, in.Off26)
	case formB:
		return fmt.Sprintf("bc %s,cr%d,%+d", Cond(in.RD), in.RA, in.Imm)
	case formR:
		return fmt.Sprintf("%s r%d", in.Op, in.RD)
	case form0:
		return in.Op.String()
	}
	return fmt.Sprintf("illegal(%#08x)", Encode(in))
}
