package campaign

import (
	"fmt"
	"sync"

	"repro/internal/cc"
	"repro/internal/fault"
	"repro/internal/injector"
	"repro/internal/parallel"
	"repro/internal/programs"
	"repro/internal/vm"
	"repro/internal/workload"
)

// This file is the parallel campaign executor. Every injection of the
// paper's experiments is an independent run — a freshly rebooted machine, a
// deterministic input, one armed fault — so the execution of a campaign
// shards perfectly across workers. The design keeps all randomness in
// planning, which stays serial, and fans out only the runs: results are
// written into per-unit slots and aggregated in planning order, so a
// campaign's Result is bit-identical for any worker count.
//
// The per-worker machinePool supplies the other half of the speed-up:
// instead of allocating a fresh 1 MiB machine per injection (the literal
// reading of "the target system is rebooted between injections"), each
// worker keeps one loaded machine per compiled program and reboots it with
// vm.(*Machine).Reset, which restores the post-Load state without
// reallocating the memory or decode arrays.

// machinePool caches loaded machines per compiled program. Each executor
// worker owns exactly one pool, so pools need no locking.
type machinePool struct {
	machines map[*cc.Compiled]*vm.Machine
}

func newMachinePool() *machinePool {
	return &machinePool{machines: make(map[*cc.Compiled]*vm.Machine)}
}

// acquire returns a ready (rebooted) machine for the compiled program with
// the input and watchdog budget installed.
func (p *machinePool) acquire(c *cc.Compiled, in programs.Input, maxCycles uint64) (*vm.Machine, error) {
	m, ok := p.machines[c]
	if !ok {
		m = vm.New(vm.Config{})
		if err := m.Load(c.Prog.Image); err != nil {
			return nil, err
		}
		p.machines[c] = m
	} else if err := m.Reset(); err != nil {
		return nil, err
	}
	m.SetMaxCycles(maxCycles)
	m.SetInput(in.Ints)
	m.SetByteInput(in.Bytes)
	return m, nil
}

// runClean executes one clean run on a pooled machine.
func (p *machinePool) runClean(c *cc.Compiled, cs workload.Case, maxCycles uint64) (RunResult, error) {
	m, err := p.acquire(c, cs.Input, maxCycles)
	if err != nil {
		return RunResult{}, err
	}
	if _, err := m.Run(); err != nil {
		return RunResult{}, err
	}
	_, res := classify(m, cs.Golden)
	return res, nil
}

// runWithFault executes one injected run on a pooled machine.
func (p *machinePool) runWithFault(c *cc.Compiled, cs workload.Case, f *fault.Fault, mode injector.Mode, maxCycles uint64) (RunResult, error) {
	m, err := p.acquire(c, cs.Input, maxCycles)
	if err != nil {
		return RunResult{}, err
	}
	s, err := injector.Arm(m, mode, f)
	if err != nil {
		return RunResult{}, err
	}
	if _, err := m.Run(); err != nil {
		return RunResult{}, err
	}
	_, res := classify(m, cs.Golden)
	res.Activations = s.Activations()
	return res, nil
}

// runUnit is one injection of a planned campaign: the (program, fault,
// input) triple plus its calibrated watchdog budget and the index of the
// Entry it aggregates into.
type runUnit struct {
	program string
	c       *cc.Compiled
	f       *fault.Fault
	cs      workload.Case
	caseIx  int
	budget  uint64
	mode    injector.Mode
	entry   int
}

// unitOutcome is the per-run data an Entry aggregates.
type unitOutcome struct {
	mode      FailureMode
	activated bool
}

// executeUnits fans the planned units out over the worker pool and returns
// their outcomes in unit order. Each worker keeps its own machine pool.
func executeUnits(workers int, units []runUnit) ([]unitOutcome, error) {
	out := make([]unitOutcome, len(units))
	pools := make([]*machinePool, parallel.DefaultWorkers(workers))
	err := parallel.ForEach(workers, len(units), func(w, i int) error {
		if pools[w] == nil {
			pools[w] = newMachinePool()
		}
		u := &units[i]
		r, err := pools[w].runWithFault(u.c, u.cs, u.f, u.mode, u.budget)
		if err != nil {
			return fmt.Errorf("campaign: %s %s case %d: %w", u.program, u.f.ID, u.caseIx, err)
		}
		out[i] = unitOutcome{mode: r.Mode, activated: r.Activations > 0}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunCleanBatch executes the program over every case with no fault armed,
// fanning the runs across workers with pooled machines. Results are in
// case order, identical to calling RunClean per case.
func RunCleanBatch(c *cc.Compiled, cases []workload.Case, maxCycles uint64, workers int) ([]RunResult, error) {
	pools := make([]*machinePool, parallel.DefaultWorkers(workers))
	return parallel.Map(workers, len(cases), func(w, i int) (RunResult, error) {
		if pools[w] == nil {
			pools[w] = newMachinePool()
		}
		return pools[w].runClean(c, cases[i], maxCycles)
	})
}

// calibKey identifies one calibration: budgets depend only on the compiled
// program and the exact case set. Case sets obtained through
// workload.Cached are canonical per (kind, n, seed), so repeated campaigns
// at the same scale and seed hit the cache.
type calibKey struct {
	c     *cc.Compiled
	first *workload.Case
	n     int
}

var calibCache sync.Map // calibKey -> []uint64

// CalibrateCyclesWorkers is CalibrateCycles with an explicit worker count
// (0 selects runtime.GOMAXPROCS(0), 1 the serial path). Budgets are cached
// per (compiled program, case set), so repeated campaigns on the same
// workload do not recalibrate; the returned slice is shared and must be
// treated as read-only.
func CalibrateCyclesWorkers(c *cc.Compiled, cases []workload.Case, workers int) ([]uint64, error) {
	if len(cases) == 0 {
		return nil, nil
	}
	key := calibKey{c: c, first: &cases[0], n: len(cases)}
	if v, ok := calibCache.Load(key); ok {
		return v.([]uint64), nil
	}
	pools := make([]*machinePool, parallel.DefaultWorkers(workers))
	budgets, err := parallel.Map(workers, len(cases), func(w, i int) (uint64, error) {
		if pools[w] == nil {
			pools[w] = newMachinePool()
		}
		res, err := pools[w].runClean(c, cases[i], vm.DefaultMaxCycles)
		if err != nil {
			return 0, err
		}
		if res.Mode != Correct {
			return 0, fmt.Errorf("campaign: clean run %d not correct (mode %v, state %v)", i, res.Mode, res.State)
		}
		return res.Cycles*3 + 50_000, nil
	})
	if err != nil {
		return nil, err
	}
	calibCache.Store(key, budgets)
	return budgets, nil
}
