// Package journal is the crash-safety layer of the campaign executor: an
// append-only, CRC-protected write-ahead log of completed (unit → outcome)
// records. A campaign journaling into a file can be killed at any point —
// SIGKILL included — and resumed later; the resumed run replays the
// journaled outcomes and executes only the remaining units, producing a
// Result bit-identical to an uninterrupted run.
//
// The file is bound to a campaign *plan fingerprint*: a hash over the
// planned unit sequence (programs, faults, cases, budgets, injector mode)
// that is independent of the worker count and of execution shortcuts like
// golden-run fast-forward. Resuming with a different plan — another seed,
// scale or program set — is refused instead of silently mixing outcomes.
//
// Layout (all little-endian):
//
//	header   magic "SWFJ" | version u16 | reserved u16 | fingerprint u64 | crc32 u32
//	record   unit u32 | mode u8 | flags u8 | reserved u16 | crc32 u32
//
// Each record's CRC covers its first 8 bytes, so a torn tail — the record
// being appended when the process died — is detected and truncated away on
// open, and any corrupt record cuts the replay off at the last good one
// (everything before it is still trusted; everything after is re-executed).
//
// Degradation contract: the journal is an aid, never a liability. The
// first write failure — ENOSPC, a short write, a failed sync — flips the
// journal into degraded mode: the file is truncated back to the last whole
// record (so whatever was persisted stays resumable), every later Append
// records the outcome in memory only, and the campaign carries on as if
// -journal had not been given. Canonicalize makes one recovery attempt at
// campaign completion: every outcome is still held in memory, so if the
// pressure was transient (space freed, quota raised) the finished journal
// is rewritten whole and is byte-identical to one from an undisturbed run.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

const (
	magic      = "SWFJ"
	version    = 1
	headerSize = 20
	recordSize = 12
)

// File is the slice of *os.File the journal uses. The wrapped constructors
// (CreateWrapped, OpenWrapped) accept a hook that substitutes another
// implementation — in practice the chaos package's disk-fault wrapper — so
// the degradation contract above is testable against injected storage
// failures without touching the filesystem layer.
type File interface {
	io.Reader
	io.Writer
	io.WriterAt
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Close() error
}

// Wrap substitutes a File implementation for the journal's raw file. A nil
// Wrap (or one returning its argument) keeps the raw handle.
type Wrap func(*os.File) File

// Outcome flag bits.
const (
	flagActivated = 1 << iota // the fault's corruption applied at least once
	flagDegraded              // checkpoint integrity failure; unit fell back to straight execution
	flagRetried               // unit panicked once and succeeded on a fresh machine
)

// Outcome is the journaled result of one campaign unit. Mode is the
// campaign.FailureMode as a small integer (the journal does not import the
// campaign package; the dependency points the other way).
type Outcome struct {
	Mode      uint8
	Activated bool
	Degraded  bool
	Retried   bool
}

// Flags packs the outcome's booleans into the journal's (and the worker
// protocol's) flag byte; DecodeOutcome is its inverse. The two wire formats
// deliberately share this encoding so a verdict received from a worker
// subprocess appends to the journal without translation.
func (o Outcome) Flags() uint8 {
	var f uint8
	if o.Activated {
		f |= flagActivated
	}
	if o.Degraded {
		f |= flagDegraded
	}
	if o.Retried {
		f |= flagRetried
	}
	return f
}

// DecodeOutcome rebuilds an Outcome from its wire form (mode byte plus the
// Flags bit set).
func DecodeOutcome(mode, flags uint8) Outcome {
	return Outcome{
		Mode:      mode,
		Activated: flags&flagActivated != 0,
		Degraded:  flags&flagDegraded != 0,
		Retried:   flags&flagRetried != 0,
	}
}

// Journal is an open campaign journal. All methods are safe for concurrent
// use by executor workers.
type Journal struct {
	// OnAppend, when non-nil, observes every successful Append with the
	// number of distinct completed units so far. Callers use it for progress
	// reporting; tests use it to interrupt campaigns at exact points. It is
	// invoked with the journal's lock held — do not call back into the
	// Journal from it.
	OnAppend func(done int)

	// Metrics, when its instruments are non-nil, counts appends and their
	// write latency. Set it before execution starts; the zero value (the
	// default) disables both at the cost of one nil check per Append.
	Metrics telemetry.JournalMetrics

	mu     sync.Mutex
	f      File
	path   string
	fp     uint64
	bound  bool
	resume bool
	done   map[int]Outcome

	// size is the file offset after the last whole record successfully
	// written (header included) — the resume-safe truncation point when a
	// write failure flips the journal into degraded mode.
	size     int64
	degraded bool
}

// Create opens a fresh journal at path, truncating any existing file. The
// plan fingerprint is not known until the campaign has planned its units,
// so the header is written by Bind.
//
// Create takes an exclusive advisory lock on the file: a second campaign
// opening the same journal — Create or Open — fails fast instead of
// interleaving appends into one log. The truncation happens only after the
// lock is held, so a Create losing the race cannot destroy the winner's
// records.
func Create(path string) (*Journal, error) { return CreateWrapped(path, nil) }

// CreateWrapped is Create with a File substitution hook: the raw file is
// opened, locked and truncated as usual, then every subsequent journal
// operation goes through wrap's result.
func CreateWrapped(path string, wrap Wrap) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	return &Journal{f: wrapFile(f, wrap), path: path, done: make(map[int]Outcome)}, nil
}

func wrapFile(f *os.File, wrap Wrap) File {
	if wrap == nil {
		return f
	}
	return wrap(f)
}

// Open loads an existing journal for resumption: the header is read and
// retained for verification by Bind, every intact record is loaded, and a
// torn or corrupt tail is truncated so subsequent appends extend the last
// good record. Like Create, Open holds the journal's exclusive advisory
// lock for the lifetime of the Journal.
func Open(path string) (*Journal, error) { return OpenWrapped(path, nil) }

// OpenWrapped is Open with a File substitution hook; the load pass (header
// verification, record replay, tail truncation) runs through the wrapped
// handle, so injected read-back corruption exercises the same CRC cutoffs
// real corruption would.
func OpenWrapped(path string, wrap Wrap) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	j := &Journal{f: wrapFile(f, wrap), path: path, resume: true, done: make(map[int]Outcome)}
	if err := j.load(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// load parses the header and records, truncating a damaged tail.
func (j *Journal) load() error {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(j.f, hdr[:]); err != nil {
		return fmt.Errorf("journal %s: unreadable header (not a journal, or died before any unit completed): %w", j.path, err)
	}
	if string(hdr[:4]) != magic {
		return fmt.Errorf("journal %s: bad magic %q", j.path, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != version {
		return fmt.Errorf("journal %s: unsupported version %d", j.path, v)
	}
	if crc := crc32.ChecksumIEEE(hdr[:16]); crc != binary.LittleEndian.Uint32(hdr[16:20]) {
		return fmt.Errorf("journal %s: header checksum mismatch", j.path)
	}
	j.fp = binary.LittleEndian.Uint64(hdr[8:16])

	good := int64(headerSize)
	var rec [recordSize]byte
	for {
		n, err := io.ReadFull(j.f, rec[:])
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			// Torn tail: the process died mid-append. Drop it.
			_ = n
			break
		}
		if err != nil {
			return fmt.Errorf("journal %s: %w", j.path, err)
		}
		if crc32.ChecksumIEEE(rec[:8]) != binary.LittleEndian.Uint32(rec[8:12]) {
			// Corrupt record: trust nothing at or past it.
			break
		}
		unit := int(binary.LittleEndian.Uint32(rec[0:4]))
		if _, dup := j.done[unit]; !dup {
			j.done[unit] = DecodeOutcome(rec[4], rec[5])
		}
		good += recordSize
	}
	if err := j.f.Truncate(good); err != nil {
		return fmt.Errorf("journal %s: truncating damaged tail: %w", j.path, err)
	}
	if _, err := j.f.Seek(good, io.SeekStart); err != nil {
		return err
	}
	j.size = good
	return nil
}

// Bind fixes the journal to a campaign plan fingerprint. On a fresh journal
// it writes the header; on a resumed one it verifies the stored fingerprint
// and fails if the plan differs. Append refuses to run before Bind.
func (j *Journal) Bind(fingerprint uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.bound {
		if j.fp != fingerprint {
			return fmt.Errorf("journal %s: already bound to plan %016x, got %016x", j.path, j.fp, fingerprint)
		}
		return nil
	}
	if j.resume {
		if j.fp != fingerprint {
			return fmt.Errorf("journal %s: belongs to a different campaign plan (journal %016x, current %016x); same seed, scale, programs and mode are required to resume", j.path, j.fp, fingerprint)
		}
		j.bound = true
		return nil
	}
	j.fp = fingerprint
	j.bound = true
	var hdr [headerSize]byte
	copy(hdr[:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:6], version)
	binary.LittleEndian.PutUint64(hdr[8:16], fingerprint)
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(hdr[:16]))
	if _, err := j.f.Write(hdr[:]); err != nil {
		// A journal whose header cannot be written persists nothing; run
		// the campaign journal-less rather than refusing to run it.
		j.degrade(fmt.Errorf("writing header: %w", err))
		return nil
	}
	j.size = headerSize
	return nil
}

// degrade flips the journal into journal-disabled mode after a write
// failure: the file is truncated back to the last whole record so the
// persisted prefix stays resumable, and every later Append records in
// memory only. Called with j.mu held.
func (j *Journal) degrade(reason error) {
	if j.degraded {
		return
	}
	j.degraded = true
	// Best effort: the disk that failed the write may refuse the truncate
	// too, in which case the per-record CRCs truncate the partial tail on
	// the next Open instead.
	if err := j.f.Truncate(j.size); err == nil {
		j.f.Seek(j.size, io.SeekStart)
	}
	if j.Metrics.DegradedMode != nil {
		j.Metrics.DegradedMode.Set(1)
	}
	fmt.Fprintf(os.Stderr, "journal %s: write failed (%v); continuing without the journal — the %d units persisted so far stay resumable\n",
		j.path, reason, len(j.done))
}

// Degraded reports whether a write failure disabled the journal.
func (j *Journal) Degraded() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded
}

// Done returns the journaled outcome of a unit, if one exists.
func (j *Journal) Done(unit int) (Outcome, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	o, ok := j.done[unit]
	return o, ok
}

// Len returns the number of distinct completed units on record.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Resumed reports whether the journal was opened over an existing file.
func (j *Journal) Resumed() bool { return j.resume }

// Path returns the journal's file path (for resume hints).
func (j *Journal) Path() string { return j.path }

// Append records one completed unit. Records go straight to the file — no
// user-space buffering — so a kill loses at most the record being written,
// which the next Open truncates away. Appending a unit that is already on
// record is a no-op (a resumed campaign never re-executes journaled units,
// but the guard keeps duplicates harmless).
func (j *Journal) Append(unit int, o Outcome) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.bound {
		return fmt.Errorf("journal %s: Append before Bind", j.path)
	}
	if _, dup := j.done[unit]; dup {
		return nil
	}
	if j.degraded {
		// Journal-disabled mode: keep the outcome in memory so replay,
		// progress and the completion-time recovery attempt still see it,
		// but touch nothing on disk.
		j.done[unit] = o
		if j.OnAppend != nil {
			j.OnAppend(len(j.done))
		}
		return nil
	}
	var start time.Time
	if j.Metrics.AppendLatency != nil {
		start = time.Now()
	}
	var rec [recordSize]byte
	binary.LittleEndian.PutUint32(rec[0:4], uint32(unit))
	rec[4] = o.Mode
	rec[5] = o.Flags()
	binary.LittleEndian.PutUint32(rec[8:12], crc32.ChecksumIEEE(rec[:8]))
	if _, err := j.f.Write(rec[:]); err != nil {
		j.degrade(err)
		j.done[unit] = o
		if j.OnAppend != nil {
			j.OnAppend(len(j.done))
		}
		return nil
	}
	j.size += recordSize
	j.done[unit] = o
	j.Metrics.Appends.Inc()
	if j.Metrics.AppendLatency != nil {
		j.Metrics.AppendLatency.ObserveSince(start)
	}
	if j.OnAppend != nil {
		j.OnAppend(len(j.done))
	}
	return nil
}

// Canonicalize rewrites the record section in ascending unit order and
// syncs. Append order is arrival order, which for a distributed campaign
// depends on host timing; a canonicalized journal has byte-identical
// content for any arrival interleaving of the same outcomes — the form the
// fabric merge leaves behind, and the form single-host runs produce
// naturally when nothing is resumed or redelivered out of order. Call it
// only after the campaign completes: a crash mid-rewrite loses the tail of
// the record section (never the header), costing re-execution, not
// correctness.
//
// On a degraded journal, Canonicalize is the recovery attempt: every
// outcome is still in memory, so the whole file — header included, in case
// degradation hit Bind — is rewritten from scratch. If the disk cooperates
// the journal ends byte-identical to an undisturbed run's; if not, the
// journal stays degraded and the campaign result is unaffected. A write
// failure on a healthy journal degrades it rather than failing the
// completed campaign.
func (j *Journal) Canonicalize() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.bound {
		return fmt.Errorf("journal %s: Canonicalize before Bind", j.path)
	}
	units := make([]int, 0, len(j.done))
	for u := range j.done {
		units = append(units, u)
	}
	sort.Ints(units)
	buf := make([]byte, 0, len(units)*recordSize)
	for _, u := range units {
		o := j.done[u]
		var rec [recordSize]byte
		binary.LittleEndian.PutUint32(rec[0:4], uint32(u))
		rec[4] = o.Mode
		rec[5] = o.Flags()
		binary.LittleEndian.PutUint32(rec[8:12], crc32.ChecksumIEEE(rec[:8]))
		buf = append(buf, rec[:]...)
	}
	wasDegraded := j.degraded
	if wasDegraded {
		var hdr [headerSize]byte
		copy(hdr[:4], magic)
		binary.LittleEndian.PutUint16(hdr[4:6], version)
		binary.LittleEndian.PutUint64(hdr[8:16], j.fp)
		binary.LittleEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(hdr[:16]))
		if _, err := j.f.WriteAt(hdr[:], 0); err != nil {
			return nil // still degraded; the persisted prefix stays resumable
		}
	}
	if _, err := j.f.WriteAt(buf, headerSize); err != nil {
		j.degrade(fmt.Errorf("canonicalize: %w", err))
		return nil
	}
	end := int64(headerSize + len(buf))
	if err := j.f.Truncate(end); err != nil {
		j.degrade(fmt.Errorf("canonicalize truncate: %w", err))
		return nil
	}
	if _, err := j.f.Seek(end, io.SeekStart); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.degrade(fmt.Errorf("canonicalize sync: %w", err))
		return nil
	}
	j.size = end
	if wasDegraded {
		j.degraded = false
		if j.Metrics.DegradedMode != nil {
			j.Metrics.DegradedMode.Set(0)
		}
		fmt.Fprintf(os.Stderr, "journal %s: recovered at completion; all %d outcomes rewritten\n", j.path, len(units))
	}
	return nil
}

// Sync flushes the journal to stable storage. A sync failure degrades the
// journal (fsync reporting failure says nothing about what reached the
// platter, so nothing later can be trusted to persist) and is not returned:
// the campaign carries on journal-less.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.degraded {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		j.degrade(err)
	}
	return nil
}

// Close syncs and closes the file. The Journal must not be used afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.degraded {
		j.f.Close()
		return nil
	}
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
