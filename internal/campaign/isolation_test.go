package campaign

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The isolation tests drive the executor's host-fault machinery through
// testUnitHook, which runs inside runUnitGuarded — exactly where a real
// interpreter or injector panic would surface.

func withUnitHook(t *testing.T, hook func(u *runUnit, attempt int)) {
	t.Helper()
	testUnitHook = hook
	t.Cleanup(func() { testUnitHook = nil })
}

func isolationConfig() Config {
	return Config{
		Programs:      []string{"JB.team11"},
		CasesPerFault: 2,
		Seed:          3,
		Workers:       4,
	}
}

// TestHostPanicRetriedOnFreshMachine: a panic on the first attempt of every
// unit must be absorbed by one retry on a fresh machine, leaving a complete
// campaign with true outcomes and Retried accounting — no HostFaults.
func TestHostPanicRetriedOnFreshMachine(t *testing.T) {
	ref, err := Run(isolationConfig())
	if err != nil {
		t.Fatal(err)
	}
	withUnitHook(t, func(u *runUnit, attempt int) {
		if attempt == 1 {
			panic("transient host fault (injected by test)")
		}
	})
	res, err := Run(isolationConfig())
	if err != nil {
		t.Fatalf("campaign died on a retriable panic: %v", err)
	}
	if res.Exec.Retried != res.Runs {
		t.Errorf("retried %d of %d units; every first attempt panicked", res.Exec.Retried, res.Runs)
	}
	if res.Exec.HostFaults != 0 {
		t.Errorf("%d units quarantined; all panics were single-shot", res.Exec.HostFaults)
	}
	if !sameEntries(res, ref) {
		t.Error("retried units changed the campaign outcome")
	}
}

// TestHostDoublePanicQuarantined: a unit that panics on both attempts is
// quarantined as a HostFault verdict and the campaign still completes, with
// every other unit reporting its true outcome.
func TestHostDoublePanicQuarantined(t *testing.T) {
	withUnitHook(t, func(u *runUnit, attempt int) {
		if u.caseIx == 1 {
			panic("persistent host fault (injected by test)")
		}
	})
	res, err := Run(isolationConfig())
	if err != nil {
		t.Fatalf("campaign died on a quarantinable panic: %v", err)
	}
	if res.Exec.HostFaults == 0 {
		t.Fatal("no unit was quarantined")
	}
	// Every fault × case pair with caseIx 1 is quarantined: half the units.
	if res.Exec.HostFaults*2 != res.Runs {
		t.Errorf("quarantined %d of %d units, want every caseIx=1 unit (half)", res.Exec.HostFaults, res.Runs)
	}
	hostFaults := 0
	for i := range res.Entries {
		hostFaults += res.Entries[i].Counts[HostFault]
	}
	if hostFaults != res.Exec.HostFaults {
		t.Errorf("entries count %d HostFault verdicts, Exec says %d", hostFaults, res.Exec.HostFaults)
	}
}

// TestUnitTimeoutQuarantined: a unit stalling past UnitTimeout is abandoned
// and quarantined; the campaign completes without it. Exactly one unit
// stalls — a per-unit stall with a tight deadline would let ordinary units
// trip the watchdog too on a slow (race-instrumented, loaded) machine — and
// the deadline is generous for the same reason: the property under test is
// "a stalled unit cannot stall the campaign", not the watchdog's latency.
func TestUnitTimeoutQuarantined(t *testing.T) {
	stall := make(chan struct{})
	release := sync.OnceFunc(func() { close(stall) })
	t.Cleanup(release)
	var stalled atomic.Bool
	withUnitHook(t, func(u *runUnit, attempt int) {
		if stalled.CompareAndSwap(false, true) {
			<-stall
		}
	})
	cfg := isolationConfig()
	cfg.UnitTimeout = 2 * time.Second
	res, err := Run(cfg)
	// Unblock the abandoned goroutine right away so it winds down while
	// the assertions run, instead of lingering into later tests.
	release()
	if err != nil {
		t.Fatalf("campaign died on a stalled unit: %v", err)
	}
	if res.Exec.HostFaults != 1 {
		t.Fatalf("quarantined %d units, want exactly the one stalled unit", res.Exec.HostFaults)
	}
	hostFaults := 0
	for i := range res.Entries {
		hostFaults += res.Entries[i].Counts[HostFault]
	}
	if hostFaults != 1 {
		t.Errorf("entries count %d HostFault verdicts, want 1", hostFaults)
	}
}

// sameEntries compares two Results' entries field by field, ignoring Exec.
func sameEntries(a, b *Result) bool {
	if len(a.Entries) != len(b.Entries) || a.Runs != b.Runs {
		return false
	}
	for i := range a.Entries {
		x, y := &a.Entries[i], &b.Entries[i]
		if x.Program != y.Program || x.Class != y.Class || x.ErrType != y.ErrType ||
			x.Runs != y.Runs || x.Activated != y.Activated || len(x.Counts) != len(y.Counts) {
			return false
		}
		for m, n := range x.Counts {
			if y.Counts[m] != n {
				return false
			}
		}
	}
	return true
}
