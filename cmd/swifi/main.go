// Command swifi regenerates the paper's tables and figures.
//
// Usage:
//
//	swifi [-scale 0.1] [-seed 2000] [-mode hw|trap] [-workers N] <experiment>...
//	swifi -list
//	swifi verify <program>
//
// Experiments are named after the paper: table1..table4, fig2, fig7..fig10,
// summary5, fielddist, metrics, or "all". -scale 1.0 reproduces the paper's
// full run counts (108,600 injections for the §6 campaign).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/injector"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "swifi:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("swifi", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.1, "fraction of the paper's run counts (1.0 = full scale)")
	seed := fs.Int64("seed", 2000, "random seed for location choice and input generation")
	mode := fs.String("mode", "hw", "injector trigger mode: hw (breakpoint registers) or trap")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "parallel campaign workers (1 = serial; results are identical for any count)")
	list := fs.Bool("list", false, "list experiment identifiers and exit")
	verifyCases := fs.Int("verify-cases", 50, "input count for 'verify <program>'")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println(strings.Join(core.ExperimentIDs(), "\n"))
		return nil
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("no experiment given; try -list, 'all', or 'verify <program>'")
	}

	e := core.New(*scale)
	e.Seed = *seed
	e.Workers = *workers
	switch *mode {
	case "hw":
		e.Mode = injector.ModeHardware
	case "trap":
		e.Mode = injector.ModeTrap
	default:
		return fmt.Errorf("unknown mode %q (hw or trap)", *mode)
	}

	if rest[0] == "verify" {
		if len(rest) != 2 {
			return fmt.Errorf("usage: swifi verify <program>")
		}
		out, err := e.VerifyRealFault(rest[1], *verifyCases)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}

	ids := rest
	if len(ids) == 1 && ids[0] == "all" {
		ids = core.ExperimentIDs()
	}
	for _, id := range ids {
		start := time.Now()
		out, err := e.Experiment(id)
		if err != nil {
			return err
		}
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "[%s took %s]\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
