package fault

import (
	"testing"
	"testing/quick"

	"repro/internal/odc"
)

func TestClassStringsAndODC(t *testing.T) {
	if ClassAssignment.String() != "assignment" || ClassChecking.String() != "checking" {
		t.Error("class names wrong")
	}
	if d, ok := ClassAssignment.ODCType(); !ok || d != odc.Assignment {
		t.Error("assignment ODC mapping wrong")
	}
	if d, ok := ClassChecking.ODCType(); !ok || d != odc.Checking {
		t.Error("checking ODC mapping wrong")
	}
	if _, ok := ClassHardware.ODCType(); ok {
		t.Error("hardware class must not map to an ODC software defect type")
	}
}

func TestErrTypeCatalogue(t *testing.T) {
	if got := len(AssignmentErrTypes()); got != 4 {
		t.Errorf("assignment error types = %d, want 4 (Table 3)", got)
	}
	if got := len(CheckingErrTypes()); got != 14 {
		t.Errorf("checking error types = %d, want 14", got)
	}
	seen := map[ErrType]bool{}
	for _, et := range append(AssignmentErrTypes(), CheckingErrTypes()...) {
		if seen[et] {
			t.Errorf("duplicate error type %q", et)
		}
		seen[et] = true
	}
}

func TestOperatorMutations(t *testing.T) {
	tests := []struct {
		op   string
		want map[ErrType]string
	}{
		{"<", map[ErrType]string{ErrLtLe: "<="}},
		{"<=", map[ErrType]string{ErrLeLt: "<"}},
		{">", map[ErrType]string{ErrGtGe: ">="}},
		{">=", map[ErrType]string{ErrGeGt: ">"}},
		{"==", map[ErrType]string{ErrEqNe: "!=", ErrEqGe: ">=", ErrEqLe: "<="}},
		{"!=", map[ErrType]string{ErrNeEq: "=="}},
		{"&&", nil},
		{"truth", nil},
	}
	for _, tt := range tests {
		got := OperatorMutations(tt.op)
		if len(got) != len(tt.want) {
			t.Errorf("OperatorMutations(%q) = %v, want %v", tt.op, got, tt.want)
			continue
		}
		for et, mut := range tt.want {
			if got[et] != mut {
				t.Errorf("OperatorMutations(%q)[%s] = %q, want %q", tt.op, et, got[et], mut)
			}
		}
	}
}

func TestValueOps(t *testing.T) {
	tests := []struct {
		op     ValueOp
		v, arg uint32
		want   uint32
	}{
		{ValPlusOne, 10, 0, 11},
		{ValMinusOne, 10, 0, 9},
		{ValMinusOne, 0, 0, 0xffffffff},
		{ValSet, 10, 777, 777},
		{ValXor, 0b1100, 0b1010, 0b0110},
	}
	for _, tt := range tests {
		if got := tt.op.Apply(tt.v, tt.arg); got != tt.want {
			t.Errorf("%d.Apply(%d,%d) = %d, want %d", tt.op, tt.v, tt.arg, got, tt.want)
		}
	}
}

// TestValueOpInverses: +1 and -1 are inverses, XOR is an involution.
func TestValueOpInverses(t *testing.T) {
	f := func(v, arg uint32) bool {
		if ValMinusOne.Apply(ValPlusOne.Apply(v, 0), 0) != v {
			return false
		}
		return ValXor.Apply(ValXor.Apply(v, arg), arg) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFaultValidate(t *testing.T) {
	good := Fault{
		ID:      "t1",
		Class:   ClassAssignment,
		ErrType: ErrValuePlusOne,
		Trigger: Trigger{Kind: TriggerOnLocation},
		Corruptions: []Corruption{
			{Kind: CorruptStoreData, Addr: 0x1000, Op: ValPlusOne},
		},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid fault rejected: %v", err)
	}
	bad := []Fault{
		{ID: "no-corruptions", Trigger: Trigger{Kind: TriggerOnLocation}},
		{ID: "bad-kind", Trigger: Trigger{Kind: TriggerOnLocation},
			Corruptions: []Corruption{{Kind: 99, Addr: 4}}},
		{ID: "zero-shift", Trigger: Trigger{Kind: TriggerOnLocation},
			Corruptions: []Corruption{{Kind: CorruptLoadAddr, Addr: 4, Offset: 0}}},
		{ID: "bad-trigger", Trigger: Trigger{Kind: 99},
			Corruptions: []Corruption{{Kind: CorruptText, Addr: 4}}},
	}
	for _, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("fault %s validated, want error", f.ID)
		}
	}
}

func TestTriggerAddrs(t *testing.T) {
	f := Fault{
		Trigger: Trigger{Kind: TriggerOnLocation},
		Corruptions: []Corruption{
			{Kind: CorruptFetch, Addr: 0x1000},
			{Kind: CorruptFetch, Addr: 0x1008},
			{Kind: CorruptStoreData, Addr: 0x1000, Op: ValPlusOne},
		},
	}
	addrs := f.TriggerAddrs()
	if len(addrs) != 2 {
		t.Fatalf("TriggerAddrs = %v, want 2 distinct", addrs)
	}
}

func TestLocationString(t *testing.T) {
	l := Location{Program: "C.team1", Func: "main", Line: 12, Detail: "i"}
	if got := l.String(); got != "C.team1:main:12(i)" {
		t.Errorf("Location.String() = %q", got)
	}
}

func TestValidateRejectsNegativeSkip(t *testing.T) {
	f := Fault{
		ID:      "neg-skip",
		Trigger: Trigger{Kind: TriggerOnLocation, Skip: -1},
		Corruptions: []Corruption{
			{Kind: CorruptFetch, Addr: 4, NewWord: 1},
		},
	}
	if err := f.Validate(); err == nil {
		t.Fatal("negative skip accepted")
	}
}
