package vm

import "encoding/binary"

// The block engine executes compiled basic blocks instead of the
// per-instruction fetch/decode/execute loop. A block is the maximal
// straight-line instruction sequence starting at one text word, lowered once
// (see compile.go) into a flat array of micro-ops: adjacent instructions are
// fused into superinstructions (compare+branch, load+op, op+store, immediate
// chains) and every per-step check that cannot fire inside the block —
// watchpoints, the watchdog, breakpoints, alignment and text bounds — is
// hoisted to block entry. Between fault points the machine therefore runs at
// block speed; at them it falls back, one instruction at a time, to the
// interpreter's step, which is the single source of truth for observer and
// expiry ordering.
//
// Equivalence contract: a run under the block engine is bit-identical to the
// interpreter — same registers, memory, output, cycle counts, exception PCs
// and snapshot checksums. The dispatcher guarantees it by construction:
//
//   - A block is entered only when its whole instruction range is free of
//     armed watch addresses and its cycle span cannot cross the next watch
//     cycle mark or the run limit; otherwise the dispatcher delegates single
//     steps to the interpreter, which fires hooks and expires watchdogs in
//     the canonical order.
//   - Micro-ops that can fault (memory, division, syscalls) carry the exact
//     cycle cost and PC of their faulting component, so a mid-block
//     exception leaves the machine in the same state a stepped run would.
//   - Blocks whose first instruction is a trap are never executed compiled;
//     the dispatcher steps them so the trap-hook protocol stays intact.
//
// Fault-aware invalidation: compiled blocks mirror the decoded-instruction
// cache, so every mutation of that cache — WriteWord into text, PlantDecoded,
// and the Reset/Restore re-decode paths — drops the blocks covering the
// mutated word (invalidateBlocksAt) or, on a full cache rebuild, all of them
// (clearBlocks). An injector arming a corruption mid-run through a trap hook
// therefore invalidates through the same calls, with no extra protocol.

// maxBlockInsts caps the number of instructions one block may cover. The cap
// bounds the backward scan of invalidateBlocksAt and keeps the dispatcher's
// run-limit / watch-mark entry checks tight (a block never spans more than
// maxBlockInsts cycles).
const maxBlockInsts = 64

// uopCode selects the operation of one micro-op.
type uopCode uint8

const (
	uNone uopCode = iota

	// Arithmetic/logic singles; semantics mirror execute exactly.
	uAddi
	uAddis
	uMulli
	uAndi
	uOri
	uXori
	uAdd
	uSubf
	uMullw
	uDivw
	uMod
	uAnd
	uOr
	uXor
	uSlw
	uSrw
	uSraw
	uNeg
	uCmpwi
	uCmpw
	uMflr
	uMtlr

	// uGuardSP re-checks the stack guard after a preceding micro-op whose
	// destination is SP (compile-time knowledge replaces the interpreter's
	// per-instruction check).
	uGuardSP

	// Memory singles. The plain forms require the destination not be SP and
	// take an inline fast path when no bus hook is armed; the *SP forms
	// (loads into the stack pointer) always run the fully checked helper.
	uLwz
	uLwzSP
	uStw
	uLbz
	uLbzSP
	uStb
	uLwzx
	uLwzxSP
	uStwx
	uLbzx
	uLbzxSP
	uStbx

	// Terminals: exactly one ends every block and sets the next PC.
	uB
	uBl
	uBlr
	uBc
	uSc
	uEnd
	uRaiseIll

	// Superinstructions (see compile.go for the selection rationale).
	uCmpwiBc
	uCmpwBc
	uLwzAddi
	uAddisOri
	uMulliAdd
	uAddLwz
	uAddStw
	uLwzMulliAdd
	uLwzAddiCmpwBc

	// Second-slot pairs (A then B): the pair's code replaces micro-op A's
	// and B keeps its own operand slot at ops[i+1]; the executor runs both
	// bodies in one dispatch and steps over the second slot. This halves
	// dispatches — the interpreter loop's dominant cost, an indirect branch
	// that rarely predicts — for the adjacent combinations the
	// execution-weighted pair profile of the target programs ranks hottest.
	uAddisOriThenLwzMulliAdd
	uLwzThenAddisOri
	uLwzMulliAddThenLwz
	uLwzThenAddStw
	uLwzThenAdd
	uLwzAddiThenAddStw
	uAddStwThenB
	uLwzAddiThenMullw
	uMullwThenLwz
	uAddThenMulliAdd
	uAddStwThenLwzAddiCmpwBc
	uLwzThenCmpwBc

	numUopCodes
)

// pairTab maps two adjacent micro-op codes to their second-slot pair code, or
// uNone. Indexed directly by code; compile's fusion pass walks each block's
// micro-ops once through it, greedily and left to right.
var pairTab [numUopCodes][numUopCodes]uopCode

func init() {
	p := func(a, b, fused uopCode) { pairTab[a][b] = fused }
	p(uAddisOri, uLwzMulliAdd, uAddisOriThenLwzMulliAdd)
	p(uLwz, uAddisOri, uLwzThenAddisOri)
	p(uLwzMulliAdd, uLwz, uLwzMulliAddThenLwz)
	p(uLwz, uAddStw, uLwzThenAddStw)
	p(uLwz, uAdd, uLwzThenAdd)
	p(uLwzAddi, uAddStw, uLwzAddiThenAddStw)
	p(uAddStw, uB, uAddStwThenB)
	p(uLwzAddi, uMullw, uLwzAddiThenMullw)
	p(uMullw, uLwz, uMullwThenLwz)
	p(uAdd, uMulliAdd, uAddThenMulliAdd)
	p(uAddStw, uLwzAddiCmpwBc, uAddStwThenLwzAddiCmpwBc)
	p(uLwz, uCmpwBc, uLwzThenCmpwBc)
}

// uop is one micro-op of a compiled block. Register fields are pre-masked at
// compile time; the executor masks again only to let the compiler elide
// bounds checks. pc is the address of the micro-op's first component
// instruction. cyc is the cycle cost the micro-op adds when it ends the
// block: for terminals the block's full instruction count, for faultable
// micro-ops the count up to and including the faulting component.
type uop struct {
	pc         uint32
	imm        int32
	imm2       int32
	imm3       int32
	code       uopCode
	cyc        uint8
	d, a, b    uint8
	d2, a2, b2 uint8
	d3, a3, b3 uint8
	cond       uint8
	flags      uint8
}

// uop flags.
const (
	// flagBackedge marks a conditional-branch terminal whose taken target is
	// the entry of its own block: a self-loop. The executor then re-enters
	// the micro-op array directly — after re-proving the entry conditions
	// and that the block was not invalidated — instead of going through the
	// dispatcher, which keeps hot inner loops inside one trace.
	flagBackedge = 1 << iota
)

// block is one compiled basic block: the micro-ops plus the number of text
// words (== instructions) it covers starting at its entry index. interp marks
// a block the dispatcher must not run compiled (its first instruction is a
// trap, whose hook protocol needs the interpreter).
type block struct {
	ops    []uop
	n      uint32
	interp bool
}

// blockWatchSafe reports whether block b, entered at text index idx with
// cycle count cycles, can execute without any watchpoint firing inside it:
// no armed watch address in its instruction range, and the next watch cycle
// mark not reachable within its span. Watch hooks fire before an
// instruction's cycle is counted, so a mark at cycles+n is still safe — the
// next dispatch delegates it to step.
func (m *Machine) blockWatchSafe(idx uint32, b *block, cycles uint64) bool {
	if m.watchCyclePos < len(m.watchCycles) && cycles+uint64(b.n) > m.watchCycles[m.watchCyclePos] {
		return false
	}
	if uint32(len(m.watchIdx)) < idx+b.n {
		return false
	}
	for _, w := range m.watchIdx[idx : idx+b.n] {
		if w {
			return false
		}
	}
	return true
}

// invalidateBlocksAt drops every compiled block whose instruction range
// covers text word idx. Blocks are at most maxBlockInsts long, so only the
// entries in [idx-maxBlockInsts+1, idx] can cover it.
func (m *Machine) invalidateBlocksAt(idx uint32) {
	if m.blocks == nil || idx >= uint32(len(m.blocks)) {
		return
	}
	lo := uint32(0)
	if idx >= maxBlockInsts-1 {
		lo = idx - (maxBlockInsts - 1)
	}
	for j := lo; j <= idx; j++ {
		if b := m.blocks[j]; b != nil && j+b.n > idx {
			m.blocks[j] = nil
		}
	}
}

// clearBlocks drops every compiled block; used when the whole decoded cache
// is rebuilt.
func (m *Machine) clearBlocks() {
	clear(m.blocks)
}

// CompileAllBlocks eagerly compiles a block at every text word that does not
// already have one and reports how many were compiled. Normal execution
// compiles lazily at actual entry points; this exists for benchmarks (the
// worst-case compile cost of an image) and compiler coverage tests.
func (m *Machine) CompileAllBlocks() int {
	if m.state == 0 {
		return 0
	}
	n := 0
	for idx := range m.blocks {
		if m.blocks[idx] == nil {
			m.compileBlock(uint32(idx))
			n++
		}
	}
	return n
}

// uopLoadWord is the fully checked word-load tail shared by load micro-ops:
// it raises like the interpreter (alignment, protection), runs the bus hook,
// writes the destination, and replicates the interpreter's post-instruction
// state and stack-guard checks (a hook may inject an exception or the load
// may target SP). It returns false when the block must stop, with the cycle
// cost already charged. The caller must have flushed the cycle counter to
// m.cycles beforehand.
func (m *Machine) uopLoadWord(d uint8, addr, pc uint32, cyc uint8) bool {
	m.pc = pc
	v, ok := m.loadWord(addr)
	if !ok {
		m.cycles += uint64(cyc)
		return false
	}
	m.regs[d&31] = v
	m.regs[0] = 0
	return m.uopMemTail(pc, cyc)
}

// uopLoadByte is uopLoadWord for byte loads.
func (m *Machine) uopLoadByte(d uint8, addr, pc uint32, cyc uint8) bool {
	m.pc = pc
	v, ok := m.loadByte(addr)
	if !ok {
		m.cycles += uint64(cyc)
		return false
	}
	m.regs[d&31] = v
	m.regs[0] = 0
	return m.uopMemTail(pc, cyc)
}

// uopStoreWord is the checked word-store tail.
func (m *Machine) uopStoreWord(addr, v, pc uint32, cyc uint8) bool {
	m.pc = pc
	if !m.storeWord(addr, v) {
		m.cycles += uint64(cyc)
		return false
	}
	return m.uopMemTail(pc, cyc)
}

// uopStoreByte is the checked byte-store tail.
func (m *Machine) uopStoreByte(addr, v, pc uint32, cyc uint8) bool {
	m.pc = pc
	if !m.storeByte(addr, v) {
		m.cycles += uint64(cyc)
		return false
	}
	return m.uopMemTail(pc, cyc)
}

// uopMemTail replicates the interpreter's after-instruction checks for
// micro-ops that ran a bus hook: the hook may have injected an exception,
// and the instruction may have moved SP below the stack guard.
func (m *Machine) uopMemTail(pc uint32, cyc uint8) bool {
	if m.state != StateRunning {
		m.cycles += uint64(cyc)
		return false
	}
	if m.regs[RegSP] < m.stackLim && m.regs[RegSP] != 0 {
		m.cycles += uint64(cyc)
		m.raise(ExcStackOvf, pc)
		return false
	}
	return true
}

// runBlocks is the block engine: resolve the block at PC (compiling it on
// first entry), prove that nothing can fire inside it, and execute its
// micro-ops; anything unprovable is delegated to the interpreter's step one
// instruction at a time. It returns when the run ends or an observer arming
// (via a trap hook) revokes block eligibility.
//
// PC and the cycle counter live in locals for the whole dispatch loop and
// are flushed to the machine only at slow-path boundaries — before step, a
// checked memory helper, a syscall or an exception — so straight-line block
// execution costs no memory traffic on either. On every exit the counter has
// advanced by exactly the number of instructions the interpreter would have
// counted, and PC is where the interpreter would leave it.
func (m *Machine) runBlocks() {
	textBase := m.textBase
	dataBase := m.dataBase
	blocks := m.blocks
	nText := uint32(len(blocks))
	regs := &m.regs
	mem := m.mem
	memLen := uint32(len(mem))
	// Single-comparison bounds for the hook-free fast paths, mirroring
	// dataAccessible/dataWritable.
	loadW := memLen - WordSize - textBase
	loadB := memLen - 1 - textBase
	storW := memLen - WordSize - dataBase
	storB := memLen - 1 - dataBase
	pc := m.pc
	cycles := m.cycles

dispatch:
	for m.state == StateRunning && m.blockOK {
		idx := (pc - textBase) / WordSize
		if pc&(WordSize-1) == 0 && idx < nText {
			b := blocks[idx]
			if b == nil {
				b = m.compileBlock(idx)
			}
			if !b.interp && cycles+uint64(b.n) <= m.runLimit &&
				(!m.watchAny || m.blockWatchSafe(idx, b, cycles)) {
				ops := b.ops
				for i := 0; i < len(ops); i++ {
					u := &ops[i]
					switch u.code {
					case uAddi:
						regs[u.d&31] = regs[u.a&31] + uint32(u.imm)
					case uAddis:
						regs[u.d&31] = regs[u.a&31] + uint32(u.imm)
					case uMulli:
						regs[u.d&31] = uint32(int32(regs[u.a&31]) * u.imm)
					case uAndi:
						regs[u.d&31] = regs[u.a&31] & uint32(u.imm)
					case uOri:
						regs[u.d&31] = regs[u.a&31] | uint32(u.imm)
					case uXori:
						regs[u.d&31] = regs[u.a&31] ^ uint32(u.imm)
					case uAdd:
						regs[u.d&31] = regs[u.a&31] + regs[u.b&31]
					case uSubf:
						regs[u.d&31] = regs[u.b&31] - regs[u.a&31]
					case uMullw:
						regs[u.d&31] = uint32(int32(regs[u.a&31]) * int32(regs[u.b&31]))
					case uDivw:
						d := int32(regs[u.b&31])
						if d == 0 {
							pc = u.pc
							cycles += uint64(u.cyc)
							m.raise(ExcDivZero, u.pc)
							continue dispatch
						}
						regs[u.d&31] = uint32(int32(regs[u.a&31]) / d)
						regs[0] = 0
					case uMod:
						d := int32(regs[u.b&31])
						if d == 0 {
							pc = u.pc
							cycles += uint64(u.cyc)
							m.raise(ExcDivZero, u.pc)
							continue dispatch
						}
						regs[u.d&31] = uint32(int32(regs[u.a&31]) % d)
						regs[0] = 0
					case uAnd:
						regs[u.d&31] = regs[u.a&31] & regs[u.b&31]
					case uOr:
						regs[u.d&31] = regs[u.a&31] | regs[u.b&31]
					case uXor:
						regs[u.d&31] = regs[u.a&31] ^ regs[u.b&31]
					case uSlw:
						regs[u.d&31] = regs[u.a&31] << (regs[u.b&31] & 31)
					case uSrw:
						regs[u.d&31] = regs[u.a&31] >> (regs[u.b&31] & 31)
					case uSraw:
						regs[u.d&31] = uint32(int32(regs[u.a&31]) >> (regs[u.b&31] & 31))
					case uNeg:
						regs[u.d&31] = uint32(-int32(regs[u.a&31]))
					case uCmpwi:
						m.cr[u.d&7] = compare(int32(regs[u.a&31]), u.imm)
					case uCmpw:
						m.cr[u.d&7] = compare(int32(regs[u.a&31]), int32(regs[u.b&31]))
					case uMflr:
						regs[u.d&31] = m.lr
					case uMtlr:
						m.lr = regs[u.d&31]
					case uGuardSP:
						if regs[RegSP] < m.stackLim && regs[RegSP] != 0 {
							pc = u.pc
							cycles += uint64(u.cyc)
							m.raise(ExcStackOvf, u.pc)
							continue dispatch
						}

					case uLwz:
						addr := regs[u.a&31] + uint32(u.imm)
						if m.loadHook == nil && addr&(WordSize-1) == 0 && addr-textBase <= loadW {
							regs[u.d&31] = binary.BigEndian.Uint32(mem[addr:])
						} else {
							m.cycles = cycles
							if !m.uopLoadWord(u.d, addr, u.pc, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
					case uLwzSP:
						m.cycles = cycles
						if !m.uopLoadWord(u.d, regs[u.a&31]+uint32(u.imm), u.pc, u.cyc) {
							pc, cycles = m.pc, m.cycles
							continue dispatch
						}
					case uStw:
						addr := regs[u.a&31] + uint32(u.imm)
						if m.storeHook == nil && addr&(WordSize-1) == 0 && addr-dataBase <= storW {
							if pi := addr >> pageShift; m.pageFlags[pi] != pageBoot|pageSnap {
								m.markPage(pi)
							}
							binary.BigEndian.PutUint32(mem[addr:], regs[u.d&31])
						} else {
							m.cycles = cycles
							if !m.uopStoreWord(addr, regs[u.d&31], u.pc, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
					case uLbz:
						addr := regs[u.a&31] + uint32(u.imm)
						if m.loadHook == nil && addr-textBase <= loadB {
							regs[u.d&31] = uint32(mem[addr])
						} else {
							m.cycles = cycles
							if !m.uopLoadByte(u.d, addr, u.pc, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
					case uLbzSP:
						m.cycles = cycles
						if !m.uopLoadByte(u.d, regs[u.a&31]+uint32(u.imm), u.pc, u.cyc) {
							pc, cycles = m.pc, m.cycles
							continue dispatch
						}
					case uStb:
						addr := regs[u.a&31] + uint32(u.imm)
						if m.storeHook == nil && addr-dataBase <= storB {
							if pi := addr >> pageShift; m.pageFlags[pi] != pageBoot|pageSnap {
								m.markPage(pi)
							}
							mem[addr] = byte(regs[u.d&31])
						} else {
							m.cycles = cycles
							if !m.uopStoreByte(addr, regs[u.d&31], u.pc, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
					case uLwzx:
						addr := regs[u.a&31] + regs[u.b&31]
						if m.loadHook == nil && addr&(WordSize-1) == 0 && addr-textBase <= loadW {
							regs[u.d&31] = binary.BigEndian.Uint32(mem[addr:])
						} else {
							m.cycles = cycles
							if !m.uopLoadWord(u.d, addr, u.pc, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
					case uLwzxSP:
						m.cycles = cycles
						if !m.uopLoadWord(u.d, regs[u.a&31]+regs[u.b&31], u.pc, u.cyc) {
							pc, cycles = m.pc, m.cycles
							continue dispatch
						}
					case uStwx:
						addr := regs[u.a&31] + regs[u.b&31]
						if m.storeHook == nil && addr&(WordSize-1) == 0 && addr-dataBase <= storW {
							if pi := addr >> pageShift; m.pageFlags[pi] != pageBoot|pageSnap {
								m.markPage(pi)
							}
							binary.BigEndian.PutUint32(mem[addr:], regs[u.d&31])
						} else {
							m.cycles = cycles
							if !m.uopStoreWord(addr, regs[u.d&31], u.pc, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
					case uLbzx:
						addr := regs[u.a&31] + regs[u.b&31]
						if m.loadHook == nil && addr-textBase <= loadB {
							regs[u.d&31] = uint32(mem[addr])
						} else {
							m.cycles = cycles
							if !m.uopLoadByte(u.d, addr, u.pc, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
					case uLbzxSP:
						m.cycles = cycles
						if !m.uopLoadByte(u.d, regs[u.a&31]+regs[u.b&31], u.pc, u.cyc) {
							pc, cycles = m.pc, m.cycles
							continue dispatch
						}
					case uStbx:
						addr := regs[u.a&31] + regs[u.b&31]
						if m.storeHook == nil && addr-dataBase <= storB {
							if pi := addr >> pageShift; m.pageFlags[pi] != pageBoot|pageSnap {
								m.markPage(pi)
							}
							mem[addr] = byte(regs[u.d&31])
						} else {
							m.cycles = cycles
							if !m.uopStoreByte(addr, regs[u.d&31], u.pc, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}

					case uB:
						pc = uint32(u.imm)
						cycles += uint64(u.cyc)
						continue dispatch
					case uBl:
						m.lr = u.pc + WordSize
						pc = uint32(u.imm)
						cycles += uint64(u.cyc)
						continue dispatch
					case uBlr:
						pc = m.lr
						cycles += uint64(u.cyc)
						continue dispatch
					case uBc:
						cycles += uint64(u.cyc)
						if crHolds(m.cr[u.a&7], u.cond) {
							if u.flags&flagBackedge != 0 && m.blockOK && blocks[idx] == b &&
								cycles+uint64(b.n) <= m.runLimit &&
								(!m.watchAny || m.blockWatchSafe(idx, b, cycles)) {
								i = -1
								continue
							}
							pc = uint32(u.imm)
						} else {
							pc = uint32(u.imm2)
						}
						continue dispatch
					case uSc:
						// The syscall raises and halts at the sc's own PC; only
						// a successful call advances past it.
						m.pc = u.pc
						m.cycles = cycles + uint64(u.cyc)
						if m.syscall() {
							m.pc = u.pc + WordSize
						}
						pc, cycles = m.pc, m.cycles
						continue dispatch
					case uEnd:
						pc = u.pc
						cycles += uint64(u.cyc)
						continue dispatch
					case uRaiseIll:
						pc = u.pc
						cycles += uint64(u.cyc)
						m.raise(ExcIllegal, u.pc)
						continue dispatch

					case uCmpwiBc:
						m.cr[u.d&7] = compare(int32(regs[u.a&31]), u.imm)
						cycles += uint64(u.cyc)
						if crHolds(m.cr[u.a2&7], u.cond) {
							if u.flags&flagBackedge != 0 && m.blockOK && blocks[idx] == b &&
								cycles+uint64(b.n) <= m.runLimit &&
								(!m.watchAny || m.blockWatchSafe(idx, b, cycles)) {
								i = -1
								continue
							}
							pc = uint32(u.imm2)
						} else {
							pc = u.pc + 2*WordSize
						}
						continue dispatch
					case uCmpwBc:
						m.cr[u.d&7] = compare(int32(regs[u.a&31]), int32(regs[u.b&31]))
						cycles += uint64(u.cyc)
						if crHolds(m.cr[u.a2&7], u.cond) {
							if u.flags&flagBackedge != 0 && m.blockOK && blocks[idx] == b &&
								cycles+uint64(b.n) <= m.runLimit &&
								(!m.watchAny || m.blockWatchSafe(idx, b, cycles)) {
								i = -1
								continue
							}
							pc = uint32(u.imm2)
						} else {
							pc = u.pc + 2*WordSize
						}
						continue dispatch
					case uLwzAddi:
						addr := regs[u.a&31] + uint32(u.imm)
						if m.loadHook == nil && addr&(WordSize-1) == 0 && addr-textBase <= loadW {
							regs[u.d&31] = binary.BigEndian.Uint32(mem[addr:])
						} else {
							m.cycles = cycles
							if !m.uopLoadWord(u.d, addr, u.pc, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
						regs[u.d2&31] = regs[u.a2&31] + uint32(u.imm2)
					case uAddisOri:
						regs[u.d&31] = regs[u.a&31] + uint32(u.imm)
						regs[u.d2&31] = regs[u.a2&31] | uint32(u.imm2)
					case uMulliAdd:
						regs[u.d&31] = uint32(int32(regs[u.a&31]) * u.imm)
						regs[u.d2&31] = regs[u.a2&31] + regs[u.b2&31]
					case uAddLwz:
						regs[u.d&31] = regs[u.a&31] + regs[u.b&31]
						addr := regs[u.a2&31] + uint32(u.imm2)
						if m.loadHook == nil && addr&(WordSize-1) == 0 && addr-textBase <= loadW {
							regs[u.d2&31] = binary.BigEndian.Uint32(mem[addr:])
						} else {
							m.cycles = cycles
							if !m.uopLoadWord(u.d2, addr, u.pc+WordSize, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
					case uAddStw:
						regs[u.d&31] = regs[u.a&31] + regs[u.b&31]
						addr := regs[u.a2&31] + uint32(u.imm2)
						if m.storeHook == nil && addr&(WordSize-1) == 0 && addr-dataBase <= storW {
							if pi := addr >> pageShift; m.pageFlags[pi] != pageBoot|pageSnap {
								m.markPage(pi)
							}
							binary.BigEndian.PutUint32(mem[addr:], regs[u.d2&31])
						} else {
							m.cycles = cycles
							if !m.uopStoreWord(addr, regs[u.d2&31], u.pc+WordSize, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
					case uLwzMulliAdd:
						addr := regs[u.a&31] + uint32(u.imm)
						if m.loadHook == nil && addr&(WordSize-1) == 0 && addr-textBase <= loadW {
							regs[u.d&31] = binary.BigEndian.Uint32(mem[addr:])
						} else {
							m.cycles = cycles
							if !m.uopLoadWord(u.d, addr, u.pc, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
						regs[u.d2&31] = uint32(int32(regs[u.a2&31]) * u.imm2)
						regs[u.d3&31] = regs[u.a3&31] + regs[u.b3&31]
					case uLwzAddiCmpwBc:
						addr := regs[u.a&31] + uint32(u.imm)
						if m.loadHook == nil && addr&(WordSize-1) == 0 && addr-textBase <= loadW {
							regs[u.d&31] = binary.BigEndian.Uint32(mem[addr:])
						} else {
							m.cycles = cycles
							if !m.uopLoadWord(u.d, addr, u.pc, u.cyc-3) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
						regs[u.d2&31] = regs[u.a2&31] + uint32(u.imm2)
						m.cr[u.d3&7] = compare(int32(regs[u.a3&31]), int32(regs[u.b3&31]))
						cycles += uint64(u.cyc)
						if crHolds(m.cr[u.b&7], u.cond) {
							if u.flags&flagBackedge != 0 && m.blockOK && blocks[idx] == b &&
								cycles+uint64(b.n) <= m.runLimit &&
								(!m.watchAny || m.blockWatchSafe(idx, b, cycles)) {
								i = -1
								continue
							}
							pc = uint32(u.imm3)
						} else {
							pc = u.pc + 4*WordSize
						}
						continue dispatch

					// Second-slot pairs: u is the first component, v the
					// second (kept in the next slot with its own PC and
					// cycle fields, so each component faults exactly as its
					// unfused form would). Pairs whose second component is
					// not a terminal step over the slot with i++.
					case uAddisOriThenLwzMulliAdd:
						v := &ops[i+1]
						regs[u.d&31] = regs[u.a&31] + uint32(u.imm)
						regs[u.d2&31] = regs[u.a2&31] | uint32(u.imm2)
						addr := regs[v.a&31] + uint32(v.imm)
						if m.loadHook == nil && addr&(WordSize-1) == 0 && addr-textBase <= loadW {
							regs[v.d&31] = binary.BigEndian.Uint32(mem[addr:])
						} else {
							m.cycles = cycles
							if !m.uopLoadWord(v.d, addr, v.pc, v.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
						regs[v.d2&31] = uint32(int32(regs[v.a2&31]) * v.imm2)
						regs[v.d3&31] = regs[v.a3&31] + regs[v.b3&31]
						i++
					case uLwzThenAddisOri:
						v := &ops[i+1]
						addr := regs[u.a&31] + uint32(u.imm)
						if m.loadHook == nil && addr&(WordSize-1) == 0 && addr-textBase <= loadW {
							regs[u.d&31] = binary.BigEndian.Uint32(mem[addr:])
						} else {
							m.cycles = cycles
							if !m.uopLoadWord(u.d, addr, u.pc, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
						regs[v.d&31] = regs[v.a&31] + uint32(v.imm)
						regs[v.d2&31] = regs[v.a2&31] | uint32(v.imm2)
						i++
					case uLwzMulliAddThenLwz:
						v := &ops[i+1]
						addr := regs[u.a&31] + uint32(u.imm)
						if m.loadHook == nil && addr&(WordSize-1) == 0 && addr-textBase <= loadW {
							regs[u.d&31] = binary.BigEndian.Uint32(mem[addr:])
						} else {
							m.cycles = cycles
							if !m.uopLoadWord(u.d, addr, u.pc, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
						regs[u.d2&31] = uint32(int32(regs[u.a2&31]) * u.imm2)
						regs[u.d3&31] = regs[u.a3&31] + regs[u.b3&31]
						addr2 := regs[v.a&31] + uint32(v.imm)
						if m.loadHook == nil && addr2&(WordSize-1) == 0 && addr2-textBase <= loadW {
							regs[v.d&31] = binary.BigEndian.Uint32(mem[addr2:])
						} else {
							m.cycles = cycles
							if !m.uopLoadWord(v.d, addr2, v.pc, v.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
						i++
					case uLwzThenAddStw:
						v := &ops[i+1]
						addr := regs[u.a&31] + uint32(u.imm)
						if m.loadHook == nil && addr&(WordSize-1) == 0 && addr-textBase <= loadW {
							regs[u.d&31] = binary.BigEndian.Uint32(mem[addr:])
						} else {
							m.cycles = cycles
							if !m.uopLoadWord(u.d, addr, u.pc, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
						regs[v.d&31] = regs[v.a&31] + regs[v.b&31]
						addr2 := regs[v.a2&31] + uint32(v.imm2)
						if m.storeHook == nil && addr2&(WordSize-1) == 0 && addr2-dataBase <= storW {
							if pi := addr2 >> pageShift; m.pageFlags[pi] != pageBoot|pageSnap {
								m.markPage(pi)
							}
							binary.BigEndian.PutUint32(mem[addr2:], regs[v.d2&31])
						} else {
							m.cycles = cycles
							if !m.uopStoreWord(addr2, regs[v.d2&31], v.pc+WordSize, v.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
						i++
					case uLwzThenAdd:
						v := &ops[i+1]
						addr := regs[u.a&31] + uint32(u.imm)
						if m.loadHook == nil && addr&(WordSize-1) == 0 && addr-textBase <= loadW {
							regs[u.d&31] = binary.BigEndian.Uint32(mem[addr:])
						} else {
							m.cycles = cycles
							if !m.uopLoadWord(u.d, addr, u.pc, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
						regs[v.d&31] = regs[v.a&31] + regs[v.b&31]
						i++
					case uLwzAddiThenAddStw:
						v := &ops[i+1]
						addr := regs[u.a&31] + uint32(u.imm)
						if m.loadHook == nil && addr&(WordSize-1) == 0 && addr-textBase <= loadW {
							regs[u.d&31] = binary.BigEndian.Uint32(mem[addr:])
						} else {
							m.cycles = cycles
							if !m.uopLoadWord(u.d, addr, u.pc, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
						regs[u.d2&31] = regs[u.a2&31] + uint32(u.imm2)
						regs[v.d&31] = regs[v.a&31] + regs[v.b&31]
						addr2 := regs[v.a2&31] + uint32(v.imm2)
						if m.storeHook == nil && addr2&(WordSize-1) == 0 && addr2-dataBase <= storW {
							if pi := addr2 >> pageShift; m.pageFlags[pi] != pageBoot|pageSnap {
								m.markPage(pi)
							}
							binary.BigEndian.PutUint32(mem[addr2:], regs[v.d2&31])
						} else {
							m.cycles = cycles
							if !m.uopStoreWord(addr2, regs[v.d2&31], v.pc+WordSize, v.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
						i++
					case uAddStwThenB:
						v := &ops[i+1]
						regs[u.d&31] = regs[u.a&31] + regs[u.b&31]
						addr := regs[u.a2&31] + uint32(u.imm2)
						if m.storeHook == nil && addr&(WordSize-1) == 0 && addr-dataBase <= storW {
							if pi := addr >> pageShift; m.pageFlags[pi] != pageBoot|pageSnap {
								m.markPage(pi)
							}
							binary.BigEndian.PutUint32(mem[addr:], regs[u.d2&31])
						} else {
							m.cycles = cycles
							if !m.uopStoreWord(addr, regs[u.d2&31], u.pc+WordSize, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
						pc = uint32(v.imm)
						cycles += uint64(v.cyc)
						continue dispatch
					case uLwzAddiThenMullw:
						v := &ops[i+1]
						addr := regs[u.a&31] + uint32(u.imm)
						if m.loadHook == nil && addr&(WordSize-1) == 0 && addr-textBase <= loadW {
							regs[u.d&31] = binary.BigEndian.Uint32(mem[addr:])
						} else {
							m.cycles = cycles
							if !m.uopLoadWord(u.d, addr, u.pc, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
						regs[u.d2&31] = regs[u.a2&31] + uint32(u.imm2)
						regs[v.d&31] = uint32(int32(regs[v.a&31]) * int32(regs[v.b&31]))
						i++
					case uMullwThenLwz:
						v := &ops[i+1]
						regs[u.d&31] = uint32(int32(regs[u.a&31]) * int32(regs[u.b&31]))
						addr := regs[v.a&31] + uint32(v.imm)
						if m.loadHook == nil && addr&(WordSize-1) == 0 && addr-textBase <= loadW {
							regs[v.d&31] = binary.BigEndian.Uint32(mem[addr:])
						} else {
							m.cycles = cycles
							if !m.uopLoadWord(v.d, addr, v.pc, v.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
						i++
					case uAddThenMulliAdd:
						v := &ops[i+1]
						regs[u.d&31] = regs[u.a&31] + regs[u.b&31]
						regs[v.d&31] = uint32(int32(regs[v.a&31]) * v.imm)
						regs[v.d2&31] = regs[v.a2&31] + regs[v.b2&31]
						i++
					case uAddStwThenLwzAddiCmpwBc:
						v := &ops[i+1]
						regs[u.d&31] = regs[u.a&31] + regs[u.b&31]
						addr := regs[u.a2&31] + uint32(u.imm2)
						if m.storeHook == nil && addr&(WordSize-1) == 0 && addr-dataBase <= storW {
							if pi := addr >> pageShift; m.pageFlags[pi] != pageBoot|pageSnap {
								m.markPage(pi)
							}
							binary.BigEndian.PutUint32(mem[addr:], regs[u.d2&31])
						} else {
							m.cycles = cycles
							if !m.uopStoreWord(addr, regs[u.d2&31], u.pc+WordSize, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
						addr2 := regs[v.a&31] + uint32(v.imm)
						if m.loadHook == nil && addr2&(WordSize-1) == 0 && addr2-textBase <= loadW {
							regs[v.d&31] = binary.BigEndian.Uint32(mem[addr2:])
						} else {
							m.cycles = cycles
							if !m.uopLoadWord(v.d, addr2, v.pc, v.cyc-3) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
						regs[v.d2&31] = regs[v.a2&31] + uint32(v.imm2)
						m.cr[v.d3&7] = compare(int32(regs[v.a3&31]), int32(regs[v.b3&31]))
						cycles += uint64(v.cyc)
						if crHolds(m.cr[v.b&7], v.cond) {
							if v.flags&flagBackedge != 0 && m.blockOK && blocks[idx] == b &&
								cycles+uint64(b.n) <= m.runLimit &&
								(!m.watchAny || m.blockWatchSafe(idx, b, cycles)) {
								i = -1
								continue
							}
							pc = uint32(v.imm3)
						} else {
							pc = v.pc + 4*WordSize
						}
						continue dispatch
					case uLwzThenCmpwBc:
						v := &ops[i+1]
						addr := regs[u.a&31] + uint32(u.imm)
						if m.loadHook == nil && addr&(WordSize-1) == 0 && addr-textBase <= loadW {
							regs[u.d&31] = binary.BigEndian.Uint32(mem[addr:])
						} else {
							m.cycles = cycles
							if !m.uopLoadWord(u.d, addr, u.pc, u.cyc) {
								pc, cycles = m.pc, m.cycles
								continue dispatch
							}
						}
						m.cr[v.d&7] = compare(int32(regs[v.a&31]), int32(regs[v.b&31]))
						cycles += uint64(v.cyc)
						if crHolds(m.cr[v.a2&7], v.cond) {
							if v.flags&flagBackedge != 0 && m.blockOK && blocks[idx] == b &&
								cycles+uint64(b.n) <= m.runLimit &&
								(!m.watchAny || m.blockWatchSafe(idx, b, cycles)) {
								i = -1
								continue
							}
							pc = uint32(v.imm2)
						} else {
							pc = v.pc + 2*WordSize
						}
						continue dispatch
					}
				}
				// Unreachable: every block ends in a terminal micro-op. The
				// fallthrough lands on the interpreter delegation below, the
				// conservative path.
			}
		}
		// Trap block, misaligned/out-of-text PC, approaching run limit, or a
		// watchpoint inside the block span: the interpreter's step handles
		// one instruction with the canonical check ordering, then dispatch
		// resumes.
		m.pc, m.cycles = pc, cycles
		m.step()
		pc, cycles = m.pc, m.cycles
	}
	m.pc, m.cycles = pc, cycles
}
