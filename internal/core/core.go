// Package core is the top-level façade of the reproduction: one Engine
// that can regenerate every table and figure of the paper by its
// identifier, at a configurable fraction of the paper's experiment sizes.
// The command-line tools, the examples and the benchmark harness all drive
// this package.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/chaos"
	"repro/internal/fault"
	"repro/internal/injector"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/mutation"
	"repro/internal/programs"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Engine runs the paper's experiments. The zero value is not usable; call
// New.
type Engine struct {
	// Scale multiplies the paper's experiment sizes (run counts); 1.0
	// reproduces the full 108,600-injection campaign and the >10,000-run
	// intensive tests. The default in New is 0.1.
	Scale float64
	// Seed drives every random choice (locations, inputs).
	Seed int64
	// Mode selects the injector trigger mechanism for campaigns.
	Mode injector.Mode
	// Workers sets the campaign executor fan-out: 0 selects
	// runtime.GOMAXPROCS(0), 1 the legacy serial path. Results are
	// bit-identical across worker counts for the same Seed.
	Workers int
	// NoFastForward disables golden-run checkpointing in the §6 campaigns,
	// forcing every injection to reboot and replay its full fault-free
	// prefix. Results are identical either way; the knob exists for A/B
	// timing comparisons (swifi -no-ffwd).
	NoFastForward bool
	// InterpOnly forces the per-instruction interpreter on campaign
	// machines, disabling the block-compiled engine. Results are
	// bit-identical either way; the knob exists for A/B timing comparisons
	// (swifi -interp-only).
	InterpOnly bool
	// Ctx, when non-nil, interrupts long experiments gracefully: cancelled
	// campaigns drain in-flight injections and surface a
	// *campaign.InterruptedError with partial tallies.
	Ctx context.Context
	// Journal, when non-nil, makes the main §6 campaign crash-safe (swifi
	// -journal/-resume). Side campaigns (hwcompare, triggers) do not use
	// it: a journal binds to exactly one campaign plan.
	Journal *journal.Journal
	// UnitTimeout bounds each injection's host wall-clock time; see
	// campaign.Config.UnitTimeout. 0 disables the watchdog.
	UnitTimeout time.Duration
	// Isolation selects where campaign injections execute: in-process
	// goroutines (default) or supervised worker subprocesses (swifi
	// -isolation=proc). Results are bit-identical either way; see
	// campaign.Config.Isolation.
	Isolation campaign.Isolation
	// Proc tunes the worker pool when Isolation is campaign.IsolationProc;
	// nil picks the defaults (re-exec this binary with -worker-mode).
	Proc *campaign.ProcOptions
	// Fabric, when non-nil, makes the main §6 campaign distributed: this
	// process coordinates, executors join over TCP (swifi -fabric-listen /
	// -fabric-join). Side campaigns (hwcompare, triggers) stay local — a
	// coordinator binds one listen socket per campaign, and their plans
	// differ from the one the executors rebuild.
	Fabric *campaign.FabricOptions
	// Telemetry, when non-nil, observes every campaign the engine runs:
	// counters and histograms on the unit hot path, structured trace events,
	// and the live progress surface (swifi -trace/-debug-addr/-progress).
	// Strictly passive — results are bit-identical with or without it.
	Telemetry *telemetry.Telemetry
	// StorageChaos, when non-nil, is the deterministic storage/IPC fault
	// injector built from the disk.*/pipe.* keys of swifi -chaos: checkpoint
	// poisoning, proc-pipe corruption, and (via the CLI's wrapped journal
	// handles) disk faults on the WAL. Results must stay bit-identical to a
	// clean run; see campaign.Config.StorageChaos.
	StorageChaos *chaos.Chaos

	mu       sync.Mutex
	campRes  *campaign.Result
	campErr  error
	campDone bool
}

// ctx returns the engine's context, defaulting to Background.
func (e *Engine) ctx() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background()
}

// New returns an engine at the given scale (0 selects 0.1, i.e. a tenth of
// the paper's run counts).
func New(scale float64) *Engine {
	if scale <= 0 {
		scale = 0.1
	}
	return &Engine{Scale: scale, Seed: 2000, Mode: injector.ModeHardware}
}

// ExperimentIDs lists the identifiers Experiment accepts, in paper order.
func ExperimentIDs() []string {
	return []string{
		"table1", "table2", "table3", "table4",
		"fig2", "fig7", "fig8", "fig9", "fig10",
		"summary5", "fielddist", "metrics", "hwcompare", "triggers", "mutation",
	}
}

// Experiment regenerates one table or figure by its paper identifier and
// returns the rendered text report.
func (e *Engine) Experiment(id string) (string, error) {
	switch id {
	case "table1":
		rows, err := e.Table1Rows()
		if err != nil {
			return "", err
		}
		return stats.Table1(rows).Render(), nil
	case "table2":
		return stats.Table2().Render(), nil
	case "table3":
		return stats.Table3().Render(), nil
	case "table4":
		res, err := e.CampaignResult()
		if err != nil {
			return "", err
		}
		return stats.Table4(res).Render(), nil
	case "fig2":
		res, err := e.CampaignResult()
		if err != nil {
			return "", err
		}
		return stats.Figure2(res).Render(), nil
	case "fig7":
		res, err := e.CampaignResult()
		if err != nil {
			return "", err
		}
		return stats.Figure7(res).Render(), nil
	case "fig8":
		res, err := e.CampaignResult()
		if err != nil {
			return "", err
		}
		return stats.Figure8(res).Render(), nil
	case "fig9":
		res, err := e.CampaignResult()
		if err != nil {
			return "", err
		}
		return stats.Figure9(res).Render(), nil
	case "fig10":
		res, err := e.CampaignResult()
		if err != nil {
			return "", err
		}
		return stats.Figure10(res).Render(), nil
	case "summary5":
		sum, err := campaign.BuildSection5Summary()
		if err != nil {
			return "", err
		}
		return stats.Section5(sum).Render(), nil
	case "fielddist":
		return stats.FieldDistributionTable().Render(), nil
	case "metrics":
		return e.MetricsReport()
	case "hwcompare":
		return e.HardwareComparison()
	case "triggers":
		return e.TriggerStudy()
	case "mutation":
		return e.MutationStudy()
	}
	return "", fmt.Errorf("core: unknown experiment %q (known: %s)", id, strings.Join(ExperimentIDs(), ", "))
}

// intensiveBudget returns the Table 1 run budget for one program at the
// engine's scale. The paper ran more than 10,000 runs per program; rare
// faults keep a floor so they still show up at small scales.
func (e *Engine) intensiveBudget(name string) int {
	base := 10000
	n := int(float64(base) * e.Scale)
	if name == "JB.team6" && n < 4000 {
		return 4000 // the rarest fault (~0.05%) needs volume to be visible
	}
	if n < 200 {
		return 200
	}
	return n
}

// Table1Rows runs the intensive test of §5 on every faulty program.
func (e *Engine) Table1Rows() ([]stats.Table1Row, error) {
	var rows []stats.Table1Row
	for _, p := range programs.RealFaultPrograms() {
		budget := e.intensiveBudget(p.Name)
		cases, err := workload.Generate(p.Kind, budget, e.Seed+99)
		if err != nil {
			return nil, err
		}
		c, err := p.CompileFaulty()
		if err != nil {
			return nil, err
		}
		results, err := campaign.RunCleanBatchCtx(e.ctx(), c, cases, vm.DefaultMaxCycles, e.Workers)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", p.Name, err)
		}
		wrong := 0
		for i := range results {
			if results[i].Mode != campaign.Correct {
				wrong++
			}
		}
		rows = append(rows, stats.Table1Row{Program: p.Name, Runs: len(cases), Wrong: wrong})
	}
	return rows, nil
}

// CampaignConfig returns the §6 campaign configuration at the engine's
// scale.
func (e *Engine) CampaignConfig() campaign.Config {
	cases := int(float64(campaign.PaperCasesPerFault) * e.Scale)
	if cases < 2 {
		cases = 2
	}
	return campaign.Config{
		CasesPerFault: cases,
		Seed:          e.Seed,
		Mode:          e.Mode,
		Workers:       e.Workers,
		NoFastForward: e.NoFastForward,
		InterpOnly:    e.InterpOnly,
		Ctx:           e.Ctx,
		UnitTimeout:   e.UnitTimeout,
		Isolation:     e.Isolation,
		Proc:          e.Proc,
		Fabric:        e.Fabric,
		Telemetry:     e.Telemetry,
		StorageChaos:  e.StorageChaos,
	}
}

// CampaignResult runs (once, cached) the full §6 class campaign at the
// engine's scale. This is the one campaign the engine's Journal attaches
// to: every table and figure derived from it resumes from the same journal.
func (e *Engine) CampaignResult() (*campaign.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.campDone {
		cfg := e.CampaignConfig()
		cfg.Journal = e.Journal
		e.campRes, e.campErr = campaign.Run(cfg)
		e.campDone = true
	}
	return e.campRes, e.campErr
}

// CachedCampaignResult returns the §6 campaign result if CampaignResult has
// already run (and succeeded), without triggering a run. CLIs use it to
// build the end-of-run report and the resume summary from whatever campaign
// the requested experiments actually executed.
func (e *Engine) CachedCampaignResult() *campaign.Result {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.campDone {
		return nil
	}
	return e.campRes
}

// ResilienceSummary renders the resilience events of the cached campaign —
// degraded fast-forwards, host-side retries, quarantined units — or ""
// when the campaign has not run or ran clean. Journal replays alone do not
// trigger it: a resumed run that re-executed nothing is healthy, and the
// replayed split is surfaced separately. Callers print it to stderr: it
// describes the host's health, not the paper's results.
func (e *Engine) ResilienceSummary() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.campDone || e.campRes == nil {
		return ""
	}
	x := e.campRes.Exec
	if x.Degraded == 0 && x.Retried == 0 && x.HostFaults == 0 {
		return ""
	}
	return fmt.Sprintf("campaign resilience: %d degraded fast-forwards, %d retried units, %d host faults quarantined",
		x.Degraded, x.Retried, x.HostFaults)
}

// HardwareComparison runs a three-class campaign (assignment and checking
// software-fault emulations plus classic hardware bit-flips) on two
// programs and renders the failure-mode comparison the paper alludes to in
// §6.4.
func (e *Engine) HardwareComparison() (string, error) {
	cfg := e.CampaignConfig()
	cfg.Fabric = nil // side campaign: stays local (see Engine.Fabric)
	cfg.Programs = []string{"C.team2", "JB.team11"}
	cfg.Classes = []fault.Class{fault.ClassAssignment, fault.ClassChecking, fault.ClassHardware}
	res, err := campaign.Run(cfg)
	if err != nil {
		return "", err
	}
	return stats.ClassComparison(res).Render(), nil
}

// TriggerStudy runs the fault-trigger comparison the paper's conclusion
// asks for: the same fault set under different When policies.
func (e *Engine) TriggerStudy() (string, error) {
	cases := int(30 * e.Scale * 10)
	if cases < 5 {
		cases = 5
	}
	res, err := campaign.RunTriggerStudyWorkers("JB.team6", 4, cases, e.Seed, e.Workers)
	if err != nil {
		return "", err
	}
	return stats.TriggerStudy(res).Render(), nil
}

// MutationStudy compares source-level mutants against machine-level
// injections of the same error types (the abstraction-gap validation; see
// internal/mutation).
func (e *Engine) MutationStudy() (string, error) {
	cases := int(60 * e.Scale * 10)
	if cases < 4 {
		cases = 4
	}
	var rows []stats.StudyRow
	for _, name := range []string{"JB.team11", "JB.team6", "C.team2"} {
		p, ok := programs.ByName(name)
		if !ok {
			return "", fmt.Errorf("core: missing program %s", name)
		}
		res, err := mutation.Study(p, 5, cases, e.Seed)
		if err != nil {
			return "", err
		}
		rows = append(rows, stats.StudyRow{
			Program: res.Program, Locations: res.Locations, Pairs: res.Pairs,
			Runs: res.Runs, Equivalent: res.Equivalent,
		})
	}
	return stats.MutationStudy(rows).Render(), nil
}

// MetricsReport renders the §6.1 complexity metrics for the whole suite.
func (e *Engine) MetricsReport() (string, error) {
	t := &stats.Table{
		Title:   "Software complexity metrics (§6.1: guidance when field data is unavailable)",
		Headers: []string{"Program", "Function", "Stmts", "Cyclomatic", "Nesting", "Halstead V", "Score"},
	}
	for _, p := range programs.All() {
		c, err := p.Compile()
		if err != nil {
			return "", err
		}
		rep := metrics.Analyze(p.Name, c.AST)
		funcs := append([]metrics.FuncMetrics(nil), rep.Funcs...)
		sort.Slice(funcs, func(i, j int) bool { return funcs[i].Score() > funcs[j].Score() })
		for _, f := range funcs {
			t.Rows = append(t.Rows, []string{
				p.Name, f.Name,
				fmt.Sprintf("%d", f.Statements), fmt.Sprintf("%d", f.Cyclomatic),
				fmt.Sprintf("%d", f.MaxNesting),
				fmt.Sprintf("%.0f", f.HalsteadVolume()), fmt.Sprintf("%.1f", f.Score()),
			})
		}
	}
	return t.Render(), nil
}

// VerifyRealFault builds and verifies the emulation of one real fault,
// returning a rendered report. Strategy 2 (fetch-bus) is used; mode
// defaults to hardware triggers with automatic fallback to trap mode when
// the fault exceeds the breakpoint budget (the §5 category B path).
func (e *Engine) VerifyRealFault(name string, cases int) (string, error) {
	p, ok := programs.ByName(name)
	if !ok {
		return "", fmt.Errorf("core: unknown program %q", name)
	}
	em, err := campaign.BuildEmulation(p)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: ODC %s, verdict: %s\n", em.Program, em.ODCType, em.Verdict)
	fmt.Fprintf(&sb, "evidence: %s\n", em.Evidence)
	if em.Fault == nil {
		sb.WriteString("no machine-level emulation exists (paper category C)\n")
		return sb.String(), nil
	}
	ws, err := workload.Generate(p.Kind, cases, e.Seed+99)
	if err != nil {
		return "", err
	}
	mode := injector.ModeHardware
	if em.NeedsTraps {
		mode = injector.ModeTrap
		fmt.Fprintf(&sb, "fault needs %d triggers > %d breakpoint registers: falling back to trap insertion\n",
			em.Triggers, vm.NumIABR)
	}
	rep, err := campaign.VerifyEmulationWorkers(p, em, campaign.StrategyFetchEveryExec, mode, ws, e.Workers)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "equivalence: %d/%d runs identical to the real faulty program (fault visible in %d)\n",
		rep.Equivalent, rep.Cases, rep.FaultShown)
	return sb.String(), nil
}
