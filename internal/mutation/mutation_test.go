package mutation_test

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/fault"
	"repro/internal/mutation"
	"repro/internal/programs"
)

const mutProbe = `int main() {
    int i;
    int n = 0;
    for (i = 0; i < 10; i++) {
        if (i != 3) {
            n = n + 1;
        }
    }
    print_int(n);
    return 0;
}`

func TestOperatorMutants(t *testing.T) {
	c, err := cc.Compile(mutProbe)
	if err != nil {
		t.Fatal(err)
	}
	var ltCheck, neCheck *cc.CheckInfo
	for i := range c.Debug.Checks {
		switch c.Debug.Checks[i].Op {
		case "<":
			ltCheck = &c.Debug.Checks[i]
		case "!=":
			neCheck = &c.Debug.Checks[i]
		}
	}
	if ltCheck == nil || neCheck == nil {
		t.Fatal("checks not found")
	}

	muts, err := mutation.OperatorMutants(mutProbe, *ltCheck)
	if err != nil {
		t.Fatal(err)
	}
	if len(muts) != 1 || muts[0].ErrType != fault.ErrLtLe {
		t.Fatalf("mutants for < = %+v", muts)
	}
	if !strings.Contains(muts[0].Source, "i <= 10") {
		t.Errorf("mutant source does not contain the swap:\n%s", muts[0].Source)
	}
	if strings.Contains(muts[0].Source, "i < 10") {
		t.Errorf("original operator still present")
	}

	muts, err = mutation.OperatorMutants(mutProbe, *neCheck)
	if err != nil {
		t.Fatal(err)
	}
	if len(muts) != 1 || muts[0].ErrType != fault.ErrNeEq {
		t.Fatalf("mutants for != = %+v", muts)
	}
	if !strings.Contains(muts[0].Source, "i == 3") {
		t.Errorf("!= mutant wrong:\n%s", muts[0].Source)
	}
	if _, err := muts[0].Compile(); err != nil {
		t.Errorf("mutant does not compile: %v", err)
	}
}

func TestOperatorMutantsPositionMismatch(t *testing.T) {
	ck := cc.CheckInfo{Op: "<", Line: 1, Col: 1}
	if _, err := mutation.OperatorMutants(mutProbe, ck); err == nil {
		t.Fatal("mismatched position accepted")
	}
	ck = cc.CheckInfo{Op: "<", Line: 999, Col: 1}
	if _, err := mutation.OperatorMutants(mutProbe, ck); err == nil {
		t.Fatal("out-of-range line accepted")
	}
}

func TestOperatorMutantsSkipsConnectives(t *testing.T) {
	muts, err := mutation.OperatorMutants(mutProbe, cc.CheckInfo{Op: "truth"})
	if err != nil || muts != nil {
		t.Fatalf("truth checks should yield no mutants (got %v, %v)", muts, err)
	}
}

// TestMutationInjectionEquivalence is the abstraction-gap theorem of the
// reproduction: for operator error types, compiling the bug into the
// source and injecting it into the correct binary are behaviourally
// indistinguishable, run by run.
func TestMutationInjectionEquivalence(t *testing.T) {
	nCases := 12
	if testing.Short() {
		nCases = 3
	}
	for _, name := range []string{"JB.team11", "JB.team6"} {
		p, ok := programs.ByName(name)
		if !ok {
			t.Fatal(name)
		}
		res, err := mutation.Study(p, 6, nCases, 7)
		if err != nil {
			t.Fatal(err)
		}
		if res.Pairs == 0 {
			t.Fatalf("%s: no mutant/injection pairs", name)
		}
		if res.Equivalent != res.Runs {
			t.Errorf("%s: %d/%d paired runs equivalent; machine-level emulation of checking faults must be exact",
				name, res.Equivalent, res.Runs)
			for et, pc := range res.PerType {
				if pc.Equivalent != pc.Total {
					t.Logf("  %s: %d/%d", et, pc.Equivalent, pc.Total)
				}
			}
		}
	}
}
