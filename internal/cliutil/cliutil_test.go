package cliutil

import (
	"flag"
	"io"
	"strings"
	"testing"
	"time"
)

func TestValidateWorkers(t *testing.T) {
	for _, n := range []int{1, 2, 64} {
		if err := ValidateWorkers(n); err != nil {
			t.Errorf("ValidateWorkers(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{0, -1, -8} {
		if err := ValidateWorkers(n); err == nil {
			t.Errorf("ValidateWorkers(%d) accepted", n)
		} else if !strings.Contains(err.Error(), "-workers") {
			t.Errorf("ValidateWorkers(%d) error %q does not name the flag", n, err)
		}
	}
}

func TestValidateUnitTimeout(t *testing.T) {
	parse := func(args ...string) (*flag.FlagSet, time.Duration) {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		d := fs.Duration("unit-timeout", 0, "")
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return fs, *d
	}

	// Unset: 0 means "no deadline" and must pass.
	fs, d := parse()
	if err := ValidateUnitTimeout(fs, "unit-timeout", d); err != nil {
		t.Errorf("unset default rejected: %v", err)
	}
	// Explicit positive: fine.
	fs, d = parse("-unit-timeout", "30s")
	if err := ValidateUnitTimeout(fs, "unit-timeout", d); err != nil {
		t.Errorf("explicit 30s rejected: %v", err)
	}
	// Explicit zero and negative: rejected with the flag named.
	for _, v := range []string{"0", "-5s"} {
		fs, d = parse("-unit-timeout", v)
		if err := ValidateUnitTimeout(fs, "unit-timeout", d); err == nil {
			t.Errorf("explicit %s accepted", v)
		} else if !strings.Contains(err.Error(), "unit-timeout") {
			t.Errorf("error %q does not name the flag", err)
		}
	}
}

func TestValidateResume(t *testing.T) {
	if err := ValidateResume(false, ""); err != nil {
		t.Errorf("no resume, no journal: %v", err)
	}
	if err := ValidateResume(true, "run.wal"); err != nil {
		t.Errorf("resume with journal: %v", err)
	}
	if err := ValidateResume(false, "run.wal"); err != nil {
		t.Errorf("fresh journal without resume: %v", err)
	}
	err := ValidateResume(true, "")
	if err == nil {
		t.Fatal("resume without journal accepted")
	}
	if !strings.Contains(err.Error(), "-journal") {
		t.Errorf("error %q does not name the missing flag", err)
	}
}

func TestHeartbeatValidate(t *testing.T) {
	ok := []HeartbeatFlags{
		{Interval: 500 * time.Millisecond, Timeout: 10 * time.Second},
		{Interval: 5 * time.Second, Timeout: 10 * time.Second}, // exactly 2x: one missed beat tolerated
		{Interval: time.Millisecond, Timeout: 2 * time.Millisecond},
	}
	for _, h := range ok {
		if err := h.Validate(); err != nil {
			t.Errorf("Validate(%v/%v) = %v, want nil", h.Interval, h.Timeout, err)
		}
	}
	bad := []HeartbeatFlags{
		{Interval: 0, Timeout: 10 * time.Second},
		{Interval: -time.Second, Timeout: 10 * time.Second},
		{Interval: time.Second, Timeout: time.Second},                        // equal: every beat is a race
		{Interval: 500 * time.Millisecond, Timeout: 999 * time.Millisecond},  // under 2x: one missed beat kills
		{Interval: 10 * time.Second, Timeout: 500 * time.Millisecond},        // inverted
		{Interval: 600 * time.Millisecond, Timeout: 1100 * time.Millisecond}, // > timeout/2
	}
	for _, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("Validate(%v/%v) accepted", h.Interval, h.Timeout)
		}
	}
}

func TestFabricValidate(t *testing.T) {
	base := func() FabricFlags {
		return FabricFlags{Hosts: 1, DialTimeout: 10 * time.Second, ReconnectWindow: time.Minute}
	}
	if f := base(); f.Validate() != nil {
		t.Errorf("defaults rejected: %v", f.Validate())
	}
	f := base()
	f.Listen, f.Join = ":9370", "host:9370"
	if f.Validate() == nil {
		t.Error("listen+join accepted")
	}
	f = base()
	f.Hosts = 0
	if f.Validate() == nil {
		t.Error("hosts=0 accepted")
	}
	f = base()
	f.DialTimeout = 0
	if f.Validate() == nil {
		t.Error("dial-timeout=0 accepted")
	}
	f = base()
	f.ReconnectWindow = -time.Second
	if f.Validate() == nil {
		t.Error("negative reconnect window accepted")
	}
	f = base()
	f.SessionTimeout = -time.Second
	if f.Validate() == nil {
		t.Error("negative session timeout accepted")
	}
	f = base()
	f.Chaos = "corrupt=2.5"
	if f.Validate() == nil {
		t.Error("out-of-range chaos probability accepted")
	}
	f = base()
	f.Chaos = "seed=7,corrupt=0.01,drop=0.02"
	if err := f.Validate(); err != nil {
		t.Errorf("valid chaos spec rejected: %v", err)
	}
	cfg, err := f.ChaosConfig()
	if err != nil || cfg == nil || cfg.Seed != 7 || cfg.Corrupt != 0.01 || cfg.Drop != 0.02 {
		t.Errorf("ChaosConfig() = %+v, %v", cfg, err)
	}
	f = base()
	if cfg, err := f.ChaosConfig(); err != nil || cfg != nil {
		t.Errorf("empty spec ChaosConfig() = %+v, %v, want nil, nil", cfg, err)
	}
	if wrap, err := f.ChaosWrap(nil); err != nil || wrap != nil {
		t.Errorf("empty spec ChaosWrap(): wrap non-nil=%v err=%v, want nil, nil", wrap != nil, err)
	}
}

func TestParseIsolation(t *testing.T) {
	if proc, err := ParseIsolation("inproc"); err != nil || proc {
		t.Errorf("inproc -> (%v, %v)", proc, err)
	}
	if proc, err := ParseIsolation("proc"); err != nil || !proc {
		t.Errorf("proc -> (%v, %v)", proc, err)
	}
	for _, s := range []string{"", "process", "PROC", "subprocess"} {
		if _, err := ParseIsolation(s); err == nil {
			t.Errorf("ParseIsolation(%q) accepted", s)
		}
	}
}
