package campaign_test

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/journal"
)

// resumeBase is the scaled-down campaign the crash-safety properties are
// proved on. Small enough to run many times, large enough that killing it
// after a handful of units leaves real work for the resume.
func resumeBase() campaign.Config {
	return campaign.Config{
		Programs:      []string{"JB.team11"},
		CasesPerFault: 4,
		Seed:          11,
	}
}

// TestResumeAfterKillBitIdentical is the tentpole property: a journaled
// campaign killed after K units and resumed — under the same or a different
// worker count — produces a Result deep-equal to an uninterrupted run. The
// kill is simulated by cancelling the campaign context from the journal's
// append hook, which is strictly harsher than a SIGINT (it fires mid-flight
// at an arbitrary unit boundary).
func TestResumeAfterKillBitIdentical(t *testing.T) {
	ref, err := campaign.Run(resumeBase())
	if err != nil {
		t.Fatal(err)
	}
	if ref.Runs < 30 {
		t.Fatalf("reference campaign ran only %d units; the kill points below need more room", ref.Runs)
	}

	for _, tc := range []struct {
		kill, killWorkers, resumeWorkers int
	}{
		{1, 1, 4},  // die almost immediately, serial, resume fanned out
		{7, 4, 1},  // die mid-flight fanned out, resume serial
		{25, 4, 4}, // die late, same fan-out
	} {
		dir := t.TempDir()
		path := filepath.Join(dir, "run.wal")

		j, err := journal.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		j.OnAppend = func(done int) {
			if done >= tc.kill {
				cancel()
			}
		}
		cfg := resumeBase()
		cfg.Workers = tc.killWorkers
		cfg.Ctx = ctx
		cfg.Journal = j
		_, err = campaign.Run(cfg)
		cancel()
		var ie *campaign.InterruptedError
		if !errors.As(err, &ie) {
			t.Fatalf("kill=%d: interrupted run returned %v, want *InterruptedError", tc.kill, err)
		}
		if ie.Done < tc.kill || ie.Done >= ie.Total {
			t.Fatalf("kill=%d: interrupted after %d/%d units", tc.kill, ie.Done, ie.Total)
		}
		if ie.Partial == nil || ie.Partial.Runs != ie.Done {
			t.Fatalf("kill=%d: partial result counts %v runs, want %d", tc.kill, ie.Partial, ie.Done)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}

		// Resume from the journal; no cancellation this time.
		j2, err := journal.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if j2.Len() < tc.kill {
			t.Fatalf("kill=%d: journal replays only %d units", tc.kill, j2.Len())
		}
		cfg2 := resumeBase()
		cfg2.Workers = tc.resumeWorkers
		cfg2.Journal = j2
		replayed := j2.Len()
		res, err := campaign.Run(cfg2)
		if err != nil {
			t.Fatalf("kill=%d: resume failed: %v", tc.kill, err)
		}
		j2.Close()

		// Exec.Replayed is execution provenance — how many outcomes came from
		// the journal this run — so it is the one field allowed (required, in
		// fact) to differ from the uninterrupted reference.
		if res.Exec.Replayed != replayed {
			t.Errorf("kill=%d: resumed run reports %d replayed units, journal held %d", tc.kill, res.Exec.Replayed, replayed)
		}
		norm := *res
		norm.Exec.Replayed = 0
		if !reflect.DeepEqual(&norm, ref) {
			t.Errorf("kill=%d workers=%d→%d: resumed Result differs from the uninterrupted run:\nresumed: %+v\nref:     %+v",
				tc.kill, tc.killWorkers, tc.resumeWorkers, res, ref)
		}
	}
}

// TestJournaledRunMatchesPlain pins the no-crash case: journaling a campaign
// (and then replaying the complete journal) must not change its Result.
func TestJournaledRunMatchesPlain(t *testing.T) {
	ref, err := campaign.Run(resumeBase())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.wal")
	j, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := resumeBase()
	cfg.Workers = 4
	cfg.Journal = j
	res, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Errorf("journaled run differs from plain run:\njournaled: %+v\nplain:     %+v", res, ref)
	}
	if j.Len() != ref.Runs {
		t.Errorf("journal holds %d records after a complete run of %d units", j.Len(), ref.Runs)
	}
	j.Close()

	// Replaying the complete journal executes nothing and reproduces the
	// Result exactly.
	j2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	cfg2 := resumeBase()
	cfg2.Journal = j2
	replay, err := campaign.Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Exec.Replayed != ref.Runs {
		t.Errorf("full-journal replay reports %d replayed units, want all %d", replay.Exec.Replayed, ref.Runs)
	}
	norm := *replay
	norm.Exec.Replayed = 0
	if !reflect.DeepEqual(&norm, ref) {
		t.Errorf("full-journal replay differs from plain run:\nreplay: %+v\nplain:  %+v", replay, ref)
	}
}

// TestJournalRejectsForeignPlan: a journal written by one campaign plan must
// refuse to resume a different plan (here: a different seed).
func TestJournalRejectsForeignPlan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	j, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := resumeBase()
	cfg.Journal = j
	if _, err := campaign.Run(cfg); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	other := resumeBase()
	other.Seed = 12
	other.Journal = j2
	if _, err := campaign.Run(other); err == nil {
		t.Fatal("a journal from seed 11 resumed a seed-12 campaign")
	}
}
