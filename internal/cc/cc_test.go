package cc_test

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/vm"
)

// compileRun compiles src, runs it with the given integer and byte inputs,
// and returns the machine.
func compileRun(t *testing.T, src string, ints []int32, bytes []byte) *vm.Machine {
	t.Helper()
	c, err := cc.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m := vm.New(vm.Config{})
	if err := m.Load(c.Prog.Image); err != nil {
		t.Fatalf("Load: %v", err)
	}
	m.SetInput(ints)
	m.SetByteInput(bytes)
	if _, err := m.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

// mustOutput compiles and runs, requiring a clean halt and exact output.
func mustOutput(t *testing.T, src string, ints []int32, want string) {
	t.Helper()
	m := compileRun(t, src, ints, nil)
	if m.State() != vm.StateHalted {
		exc, at := m.Exception()
		t.Fatalf("state = %v (exc %v at %#x)", m.State(), exc, at)
	}
	if got := string(m.Output()); got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestReturnValue(t *testing.T) {
	m := compileRun(t, `int main() { return 42; }`, nil, nil)
	if m.State() != vm.StateHalted || m.ExitStatus() != 42 {
		t.Fatalf("state %v exit %d", m.State(), m.ExitStatus())
	}
}

func TestVoidMainExitsZero(t *testing.T) {
	m := compileRun(t, `void main() { print_int(1); }`, nil, nil)
	if m.State() != vm.StateHalted || m.ExitStatus() != 0 {
		t.Fatalf("state %v exit %d", m.State(), m.ExitStatus())
	}
}

func TestArithmeticExpressions(t *testing.T) {
	tests := []struct {
		name string
		expr string
		want string
	}{
		{"precedence", "2 + 3 * 4", "14\n"},
		{"parens", "(2 + 3) * 4", "20\n"},
		{"division", "17 / 5", "3\n"},
		{"negative division", "-17 / 5", "-3\n"},
		{"modulo", "17 % 5", "2\n"},
		{"negative modulo", "-17 % 5", "-2\n"},
		{"unary minus", "-(3 - 10)", "7\n"},
		{"nested", "((1+2)*(3+4)-5)/2", "8\n"},
		{"comparison value", "(3 < 5) + (5 < 3)", "1\n"},
		{"equality value", "(3 == 3) + (3 != 3)", "1\n"},
		{"logical and value", "(1 && 2) + (1 && 0)", "1\n"},
		{"logical or value", "(0 || 0) + (0 || 7)", "1\n"},
		{"not", "!0 + !5", "1\n"},
		{"ternary true", "1 ? 10 : 20", "10\n"},
		{"ternary false", "0 ? 10 : 20", "20\n"},
		{"ternary nested", "0 ? 1 : 1 ? 2 : 3", "2\n"},
		{"char literal", "'A'", "65\n"},
		{"big constant", "100000 * 3", "300000\n"},
		{"deep expression", "1+2*(3+4*(5+6*(7+8)))", "767\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			mustOutput(t, "int main() { print_int("+tt.expr+"); return 0; }", nil, tt.want)
		})
	}
}

func TestVariablesAndAssignment(t *testing.T) {
	src := `
int main() {
    int a;
    int b = 7;
    a = 3;
    a = a + b;
    b = a - 1;
    print_int(a);
    print_int(b);
    a += 5;
    b -= 2;
    print_int(a);
    print_int(b);
    a++;
    ++a;
    b--;
    print_int(a);
    print_int(b);
    return 0;
}`
	mustOutput(t, src, nil, "10\n9\n15\n7\n17\n6\n")
}

func TestChainedAssignment(t *testing.T) {
	src := `
int main() {
    int a; int b; int c;
    a = b = c = 5;
    print_int(a + b + c);
    return 0;
}`
	mustOutput(t, src, nil, "15\n")
}

func TestIfElseChain(t *testing.T) {
	src := `
int classify(int x) {
    if (x < 0) return -1;
    else if (x == 0) return 0;
    else return 1;
}
int main() {
    print_int(classify(-5));
    print_int(classify(0));
    print_int(classify(9));
    return 0;
}`
	mustOutput(t, src, nil, "-1\n0\n1\n")
}

func TestWhileLoop(t *testing.T) {
	src := `
int main() {
    int i = 0; int sum = 0;
    while (i < 10) { sum = sum + i; i = i + 1; }
    print_int(sum);
    return 0;
}`
	mustOutput(t, src, nil, "45\n")
}

func TestForLoopWithBreakContinue(t *testing.T) {
	src := `
int main() {
    int i; int sum = 0;
    for (i = 0; i < 100; i++) {
        if (i % 2 == 0) continue;
        if (i > 10) break;
        sum += i;
    }
    print_int(sum);
    return 0;
}`
	// 1+3+5+7+9 = 25
	mustOutput(t, src, nil, "25\n")
}

func TestForWithoutCond(t *testing.T) {
	src := `
int main() {
    int i = 0;
    for (;;) {
        i++;
        if (i == 5) break;
    }
    print_int(i);
    return 0;
}`
	mustOutput(t, src, nil, "5\n")
}

func TestNestedLoops(t *testing.T) {
	src := `
int main() {
    int i; int j; int count = 0;
    for (i = 0; i < 5; i++)
        for (j = 0; j <= i; j++)
            count++;
    print_int(count);
    return 0;
}`
	mustOutput(t, src, nil, "15\n")
}

func TestRecursionFactorial(t *testing.T) {
	src := `
int fact(int n) {
    if (n <= 1) return 1;
    return n * fact(n - 1);
}
int main() {
    print_int(fact(10));
    return 0;
}`
	mustOutput(t, src, nil, "3628800\n")
}

func TestRecursionFibonacci(t *testing.T) {
	src := `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() {
    print_int(fib(15));
    return 0;
}`
	mustOutput(t, src, nil, "610\n")
}

func TestMutualRecursion(t *testing.T) {
	src := `
int isOdd(int n);
int isEven(int n) {
    if (n == 0) return 1;
    return isOdd(n - 1);
}
int isOdd(int n) {
    if (n == 0) return 0;
    return isEven(n - 1);
}
int main() {
    print_int(isEven(10));
    print_int(isOdd(10));
    return 0;
}`
	// Forward declarations are not supported; the test uses definition order
	// instead. Adjust: define isOdd first as a real definition.
	src = `
int isOdd(int n) {
    if (n == 0) return 0;
    return isEven(n - 1);
}
int isEven(int n) {
    if (n == 0) return 1;
    return isOdd(n - 1);
}
int main() {
    print_int(isEven(10));
    print_int(isOdd(10));
    return 0;
}`
	mustOutput(t, src, nil, "1\n0\n")
}

func TestLocalArrays(t *testing.T) {
	src := `
int main() {
    int a[10];
    int i;
    for (i = 0; i < 10; i++) a[i] = i * i;
    int sum = 0;
    for (i = 0; i < 10; i++) sum += a[i];
    print_int(sum);
    return 0;
}`
	mustOutput(t, src, nil, "285\n")
}

func TestTwoDimensionalArrays(t *testing.T) {
	src := `
int main() {
    int m[4][4];
    int i; int j;
    for (i = 0; i < 4; i++)
        for (j = 0; j < 4; j++)
            m[i][j] = i * 10 + j;
    print_int(m[2][3]);
    print_int(m[3][1]);
    int trace = 0;
    for (i = 0; i < 4; i++) trace += m[i][i];
    print_int(trace);
    return 0;
}`
	mustOutput(t, src, nil, "23\n31\n66\n")
}

func TestGlobalVariables(t *testing.T) {
	src := `
int counter = 100;
int table[5];
void bump(int n) { counter = counter + n; }
int main() {
    int i;
    for (i = 0; i < 5; i++) table[i] = i;
    bump(20);
    bump(3);
    print_int(counter);
    print_int(table[4]);
    return 0;
}`
	mustOutput(t, src, nil, "123\n4\n")
}

func TestGlobal2DArray(t *testing.T) {
	src := `
int grid[8][8];
int main() {
    int x; int y;
    for (x = 0; x < 8; x++)
        for (y = 0; y < 8; y++)
            grid[x][y] = x * 8 + y;
    print_int(grid[7][7]);
    print_int(grid[0][5]);
    return 0;
}`
	mustOutput(t, src, nil, "63\n5\n")
}

func TestCharArraysAndStrings(t *testing.T) {
	src := `
int slen(char *s) {
    int n = 0;
    while (s[n] != 0) n++;
    return n;
}
int main() {
    char buf[16];
    char *msg = "hello";
    int i;
    int n = slen(msg);
    for (i = 0; i < n; i++) buf[i] = msg[i] - 32;
    buf[n] = 0;
    for (i = 0; buf[i] != 0; i++) print_char(buf[i]);
    print_char(10);
    return 0;
}`
	mustOutput(t, src, nil, "HELLO\n")
}

func TestPointers(t *testing.T) {
	src := `
void swap(int *a, int *b) {
    int t = *a;
    *a = *b;
    *b = t;
}
int main() {
    int x = 3; int y = 9;
    swap(&x, &y);
    print_int(x);
    print_int(y);
    int *p = &x;
    *p = 77;
    print_int(x);
    return 0;
}`
	mustOutput(t, src, nil, "9\n3\n77\n")
}

func TestPointerArithmetic(t *testing.T) {
	src := `
int main() {
    int a[5];
    int i;
    for (i = 0; i < 5; i++) a[i] = i + 1;
    int *p = a;
    print_int(*p);
    print_int(*(p + 2));
    p = p + 4;
    print_int(*p);
    return 0;
}`
	mustOutput(t, src, nil, "1\n3\n5\n")
}

func TestMallocLinkedList(t *testing.T) {
	// Linked list built from malloc'd two-word cells: cell[0]=value,
	// cell[1]=next pointer. This is the idiom the C.team9 dynamic-structure
	// variant uses.
	src := `
int main() {
    int *head = 0;
    int i;
    for (i = 1; i <= 5; i++) {
        int *cell = malloc(8);
        cell[0] = i * i;
        cell[1] = head;
        head = cell;
    }
    int sum = 0;
    int *p = head;
    while (p != 0) {
        sum += p[0];
        p = p[1];
    }
    print_int(sum);
    return 0;
}`
	mustOutput(t, src, nil, "55\n")
}

func TestReadWriteIO(t *testing.T) {
	src := `
int main() {
    int n = read_int();
    int i; int sum = 0;
    for (i = 0; i < n; i++) sum += read_int();
    print_int(sum);
    return 0;
}`
	mustOutput(t, src, []int32{4, 10, 20, 30, 2}, "62\n")
}

func TestReadChars(t *testing.T) {
	src := `
int main() {
    int c;
    while ((c = read_char()) != -1) {
        if (c >= 'a') {
            if (c <= 'z') c = c - 32;
        }
        print_char(c);
    }
    return 0;
}`
	m := compileRun(t, src, nil, []byte("a1z!"))
	if got := string(m.Output()); got != "A1Z!" {
		t.Errorf("output %q", got)
	}
}

func TestShortCircuitEvaluation(t *testing.T) {
	src := `
int calls = 0;
int bump(int v) { calls++; return v; }
int main() {
    if (bump(0) && bump(1)) print_int(-1);
    print_int(calls);
    calls = 0;
    if (bump(1) || bump(1)) print_int(calls);
    return 0;
}`
	mustOutput(t, src, nil, "1\n1\n")
}

func TestComplexConditions(t *testing.T) {
	src := `
int main() {
    int a = 5; int b = 10; int c = 0;
    if (a < b && b < 20) print_int(1);
    if (a > b || c == 0) print_int(2);
    if (!(a == b) && (c < a || b < c)) print_int(3);
    if ((a < b && c < a) || b == 0) print_int(4);
    return 0;
}`
	mustOutput(t, src, nil, "1\n2\n3\n4\n")
}

func TestTernaryAbsMax(t *testing.T) {
	// The shape of the paper's dist() function (Figure 6).
	src := `
int dist(int x1, int y1, int x2, int y2) {
    int dx = x1 - x2;
    int dy = y1 - y2;
    int ax = (dx > 0) ? dx : -dx;
    int ay = (dy > 0) ? dy : -dy;
    return (ax > ay) ? ax : ay;
}
int main() {
    print_int(dist(0, 0, 3, -7));
    print_int(dist(5, 5, 5, 5));
    return 0;
}`
	mustOutput(t, src, nil, "7\n0\n")
}

func TestFunctionWithEightParams(t *testing.T) {
	src := `
int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
    return a + b + c + d + e + f + g + h;
}
int main() {
    print_int(sum8(1, 2, 3, 4, 5, 6, 7, 8));
    return 0;
}`
	mustOutput(t, src, nil, "36\n")
}

func TestNestedCallsPreserveTemporaries(t *testing.T) {
	src := `
int add(int a, int b) { return a + b; }
int main() {
    print_int(add(add(1, 2), add(3, add(4, 5))));
    print_int(1000 + add(10, 20) * 2);
    return 0;
}`
	mustOutput(t, src, nil, "15\n1060\n")
}

func TestCommentsAreSkipped(t *testing.T) {
	src := `
// line comment
int main() {
    /* block
       comment */
    print_int(1); // trailing
    return 0;
}`
	mustOutput(t, src, nil, "1\n")
}

func TestDivisionByZeroCrashes(t *testing.T) {
	src := `
int main() {
    int a = 5; int b = 0;
    print_int(a / b);
    return 0;
}`
	m := compileRun(t, src, nil, nil)
	if m.State() != vm.StateCrashed {
		t.Fatalf("state = %v, want crashed", m.State())
	}
	if exc, _ := m.Exception(); exc != vm.ExcDivZero {
		t.Errorf("exception %v", exc)
	}
}

func TestWildPointerCrashes(t *testing.T) {
	src := `
int main() {
    int *p = 12;
    *p = 5;
    return 0;
}`
	m := compileRun(t, src, nil, nil)
	if m.State() != vm.StateCrashed {
		t.Fatalf("state = %v, want crashed", m.State())
	}
}

func TestInfiniteLoopHangs(t *testing.T) {
	c, err := cc.Compile(`int main() { while (1) {} return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(vm.Config{MaxCycles: 10000})
	if err := m.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.State() != vm.StateHung {
		t.Fatalf("state = %v, want hung", m.State())
	}
}

func TestDeepRecursionOverflows(t *testing.T) {
	src := `
int down(int n) { return down(n + 1); }
int main() { return down(0); }`
	m := compileRun(t, src, nil, nil)
	if m.State() != vm.StateCrashed {
		t.Fatalf("state = %v, want crashed", m.State())
	}
	if exc, _ := m.Exception(); exc != vm.ExcStackOvf {
		t.Errorf("exception %v, want stack overflow", exc)
	}
}

func TestCompileErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"no main", `int f() { return 0; }`, "no main"},
		{"undefined variable", `int main() { return x; }`, "undefined variable"},
		{"undefined function", `int main() { return f(); }`, "undefined function"},
		{"duplicate function", `int f(){return 0;} int f(){return 0;} int main(){return 0;}`, "duplicate function"},
		{"duplicate global", `int g; int g; int main(){return 0;}`, "duplicate global"},
		{"duplicate local", `int main() { int a; int a; return 0; }`, "duplicate variable"},
		{"arg count", `int f(int a){return a;} int main(){return f();}`, "takes 1 arguments"},
		{"break outside loop", `int main() { break; return 0; }`, "break outside"},
		{"continue outside loop", `int main() { continue; return 0; }`, "continue outside"},
		{"void variable", `int main() { void v; return 0; }`, "void type"},
		{"assign to literal", `int main() { 3 = 4; return 0; }`, "not assignable"},
		{"deref int", `int main() { int a; return *a; }`, "dereference"},
		{"index int", `int main() { int a; return a[0]; }`, "cannot index"},
		{"missing return value", `int f() { return; } int main(){ return f(); }`, "missing return value"},
		{"void returns value", `void f() { return 3; } int main(){ f(); return 0; }`, "returns a value"},
		{"builtin shadow", `int malloc(int n) { return n; } int main(){ return 0; }`, "shadows a builtin"},
		{"too many params", `int f(int a,int b,int c,int d,int e,int g,int h,int i,int j){return 0;} int main(){return 0;}`, "more than 8"},
		{"unterminated comment", `int main() { /* oops return 0; }`, "unterminated block comment"},
		{"bad token", "int main() { int a = 3 @ 4; }", "unexpected character"},
		{"global func collision", `int f; int f(){return 0;} int main(){return 0;}`, "collides"},
		{"syntax error", `int main() { if return; }`, "expected"},
		{"array dim zero", `int main() { int a[0]; return 0; }`, "positive"},
		{"global array init", `int g[3] = 5; int main(){return 0;}`, "array initialisers"},
		{"non-constant global init", `int g = f(); int main(){return 0;}`, "constant"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := cc.Compile(tt.src)
			if err == nil {
				t.Fatalf("Compile succeeded, want error containing %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestMultiDeclarators(t *testing.T) {
	src := `
int main() {
    int a = 1, b = 2, c;
    c = a + b;
    print_int(c);
    return 0;
}`
	mustOutput(t, src, nil, "3\n")
}

func TestGlobalCharAndInit(t *testing.T) {
	src := `
char flag = 'x';
int base = 1000;
int main() {
    print_int(flag);
    print_int(base);
    flag = 'y';
    print_int(flag);
    return 0;
}`
	mustOutput(t, src, nil, "120\n1000\n121\n")
}

func TestEmptyStatementAndBlocks(t *testing.T) {
	src := `
int main() {
    ;
    { ; { print_int(9); } }
    return 0;
}`
	mustOutput(t, src, nil, "9\n")
}
