package fabric

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"time"

	"repro/internal/journal"
	"repro/internal/telemetry"
	"repro/internal/worker"
)

// Metrics is the coordinator's instrument bundle. All fields are optional;
// a nil *Metrics (or nil fields) disables observation without changing any
// scheduling decision.
type Metrics struct {
	// Hosts is the number of currently attached executor sessions.
	Hosts *telemetry.Gauge
	// Assigned counts unit assignments, including redeliveries and steals
	// (one unit assigned twice counts twice).
	Assigned *telemetry.Counter
	// Steals counts half-range steal operations (not units).
	Steals *telemetry.Counter
	// Redelivered counts units returned to the pending set by a session
	// expiry.
	Redelivered *telemetry.Counter
	// HostDeaths counts executor sessions that expired — detached past the
	// grace window — before the campaign finished. A connection loss alone
	// is not a death; the executor gets SessionTimeout to re-attach.
	HostDeaths *telemetry.Counter
	// Quarantines counts units that exhausted MaxDeliveries host deaths.
	Quarantines *telemetry.Counter
	// Resumed counts sessions that re-attached after a connection loss
	// (coordinator restarts included).
	Resumed *telemetry.Counter
	// BadFrames counts connections severed by a frame checksum mismatch —
	// the poisoned-frame rejection path.
	BadFrames *telemetry.Counter
	// HostUnits, when non-nil, returns the per-host completed-unit counter
	// for an executor name (the per-host gauge plane of the live progress
	// story).
	HostUnits func(host string) *telemetry.Counter
}

// CoordinatorOptions configures one campaign's coordinator.
type CoordinatorOptions struct {
	// Addr is the TCP listen address (e.g. ":9370", "127.0.0.1:0").
	Addr string

	// MinHosts is how many executors must be connected and ready before
	// the initial shard is cut (default 1). Executors joining later are
	// fed by redelivery and stealing.
	MinHosts int

	// Spec is sent to every executor in the hello frame; executors rebuild
	// the plan from it and must reproduce Spec.Fingerprint.
	Spec worker.Spec

	// Units is the total unit count of the plan. An executor whose rebuilt
	// plan disagrees is rejected at the handshake.
	Units int

	// HeartbeatInterval is the cadence both sides beat at (default 500ms).
	// HeartbeatTimeout is how long either side tolerates total silence
	// before declaring its peer's connection dead (default 10s). WAN links
	// want looser values than the defaults, which are inherited from the
	// pipe-local worker supervisor.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration

	// SessionTimeout is how long a session may stay detached — connection
	// lost, executor not yet re-attached — before it is declared dead and
	// its units are redelivered (default 2× HeartbeatTimeout). This is the
	// grace window that turns a partition or a coordinator-side connection
	// reset into a reconnect instead of a host death.
	SessionTimeout time.Duration

	// MaxDeliveries is how many executor hosts a unit may go down with
	// before it is quarantined with the Quarantine outcome (default 3).
	MaxDeliveries int

	// Quarantine is the outcome recorded for a unit that exhausted
	// MaxDeliveries.
	Quarantine journal.Outcome

	// Side, when non-nil, is the sidecar WAL the coordinator journals its
	// scheduling state through: session registrations, assignments, steals
	// and expiries. A Side opened over an earlier coordinator's file
	// (Side.Resumed) is replayed at the start of Run to rebuild the session
	// table and outstanding ranges — the coordinator crash-recovery path.
	Side *journal.SideLog

	// WrapConn, when non-nil, wraps every accepted connection — the hook
	// the chaos proxy plugs into.
	WrapConn func(net.Conn) net.Conn

	// Metrics/Tracer observe scheduling; both are passive. Trace events
	// ingested from executors' trace frames are re-emitted on Tracer with
	// the session's host name and the clock-offset-corrected timestamp —
	// the merged fleet trace.
	Metrics *Metrics
	Tracer  *telemetry.Tracer

	// Registry, when non-nil, receives the federated executor metrics:
	// every series in an ingested telemetry frame is republished here as a
	// gauge under a host label (the /metrics `host` plane). Nil drops the
	// metric half of federation; frames are still consumed.
	Registry *telemetry.Registry

	// Fleet, when non-nil, is kept current with per-host scheduling and
	// federation state — the live view behind /fleet and the report's
	// hosts section.
	Fleet *FleetTracker

	// Log, when non-nil, receives one line per fabric event (join, loss,
	// steal, quarantine).
	Log func(format string, args ...any)
}

func (o *CoordinatorOptions) fill() {
	if o.MinHosts < 1 {
		o.MinHosts = 1
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 10 * time.Second
	}
	if o.SessionTimeout <= 0 {
		o.SessionTimeout = 2 * o.HeartbeatTimeout
	}
	if o.MaxDeliveries < 1 {
		o.MaxDeliveries = 3
	}
}

func (o *CoordinatorOptions) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Coordinator owns the listening socket and the scheduling policy of one
// campaign. Create with NewCoordinator, drive with Run.
type Coordinator struct {
	opts CoordinatorOptions
	ln   net.Listener
}

// NewCoordinator validates the options and binds the listen socket, so the
// address (and any bind error) surfaces before planning-time work is spent.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if opts.Units <= 0 {
		return nil, errors.New("fabric: CoordinatorOptions.Units must be positive")
	}
	opts.fill()
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("fabric: %w", err)
	}
	return &Coordinator{opts: opts, ln: ln}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (c *Coordinator) Addr() net.Addr { return c.ln.Addr() }

// Close releases the listen socket. Run closes it itself on return; Close
// exists for callers that never get to Run.
func (c *Coordinator) Close() error { return c.ln.Close() }

// event is one message into the coordinator's single-threaded loop.
type event struct {
	x       *executorConn
	typ     uint8  // frame type for frame events
	payload []byte // frame payload
	err     error  // non-nil: the connection died
	join    bool   // handshake completed; register x
	rd      ready  // the ready frame, for join events
}

// executorConn is one TCP connection. Scheduling state lives on the session
// it is attached to; the conn is just the transport and may be replaced by
// a reconnect.
type executorConn struct {
	conn     net.Conn
	wtimeout time.Duration
	sess     *session // owned by the event loop; nil until registered
}

// send writes one CRC frame under a write deadline. Only the event loop
// and the pre-registration handshake write to a conn, never both at once.
func (x *executorConn) send(typ uint8, payload []byte) error {
	_ = x.conn.SetWriteDeadline(time.Now().Add(x.wtimeout))
	return worker.WriteFrameCRC(x.conn, typ, payload)
}

// session is one executor's scheduling identity, stable across reconnects.
// All fields are owned by the event loop.
type session struct {
	token      uint64
	id         int // registration order; ties deterministic iteration
	name       string
	workers    int
	conn       *executorConn   // nil while detached
	seq        uint32          // cumulative ack watermark: every seq <= this was processed
	seen       map[uint32]bool // processed seqs above the watermark (gaps from dropped writes)
	assigned   int             // units currently owned (assigned, no verdict yet)
	detachedAt time.Time       // when the connection was lost; zero if attached
	progressAt time.Time       // last verdict processed (stall detection)
	nudgedAt   time.Time       // last stall re-assign, so nudges don't repeat every beat
	done       *telemetry.Counter
}

// coordRun is the state of one Run call, touched only by the loop
// goroutine.
type coordRun struct {
	opts      *CoordinatorOptions
	events    chan event
	stop      chan struct{} // closed on loop exit; unblocks reader sends
	sessions  map[uint64]*session
	nextID    int
	nextToken uint64
	started   bool
	pending   []int // sorted unit indices awaiting an owner
	owner     map[int]*session
	done      map[int]bool
	deaths    map[int]int
	doneN     int
	total     int
	onRes     func(worker.Result) error
	fatal     error // first onResult error; ends the run
}

// Run shards the given unit indices over the connected executors and calls
// onResult exactly once per index (always from this goroutine; never
// concurrently). It returns nil when every index has a verdict or a
// quarantine, ctx.Err() on cancellation (some indices then have no result),
// the first error returned by onResult, or a fatal executor error. The
// listener is closed on return.
//
// Units of the plan outside indices are treated as already journaled: a
// late duplicate verdict for one (an executor retransmitting across a
// coordinator restart) is dropped instead of being delivered twice.
func (c *Coordinator) Run(ctx context.Context, indices []int, onResult func(worker.Result) error) error {
	defer c.ln.Close()
	if len(indices) == 0 {
		return nil
	}
	pending := append([]int(nil), indices...)
	sort.Ints(pending)
	r := &coordRun{
		opts:      &c.opts,
		events:    make(chan event, 64),
		stop:      make(chan struct{}),
		sessions:  make(map[uint64]*session),
		nextToken: 1,
		pending:   pending,
		owner:     make(map[int]*session),
		done:      make(map[int]bool),
		deaths:    make(map[int]int),
		total:     len(indices),
		onRes:     onResult,
	}
	defer close(r.stop)

	// Units already journaled are "done" from the first instant, so a
	// duplicate verdict retransmitted across a coordinator restart is
	// dropped exactly like a steal-race duplicate.
	inPlan := make(map[int]bool, len(indices))
	for _, u := range indices {
		inPlan[u] = true
	}
	for u := 0; u < c.opts.Units; u++ {
		if !inPlan[u] {
			r.done[u] = true
		}
	}

	if err := r.recover(); err != nil {
		return err
	}

	// Accept loop: handshakes happen off the event loop (planning inside
	// the executor can take seconds), completed executors are handed in.
	go func() {
		for {
			conn, err := c.ln.Accept()
			if err != nil {
				return // listener closed: Run is exiting
			}
			if c.opts.WrapConn != nil {
				conn = c.opts.WrapConn(conn)
			}
			go c.handshake(conn, r)
		}
	}()

	c.opts.logf("fabric: listening on %s for %d executor(s), %d units to run",
		c.ln.Addr(), c.opts.MinHosts, len(indices))

	beat := time.NewTicker(c.opts.HeartbeatInterval)
	defer beat.Stop()
	for {
		select {
		case <-ctx.Done():
			r.shutdownAll()
			return ctx.Err()
		case <-beat.C:
			for _, s := range r.attached() {
				if err := s.conn.send(msgHeartbeat, nil); err != nil {
					r.detach(s.conn, fmt.Errorf("heartbeat write: %w", err))
					continue
				}
				r.nudge(s)
			}
			r.expireDetached()
		case ev := <-r.events:
			var err error
			switch {
			case ev.join:
				r.register(ev.x, ev.rd)
			case ev.err != nil:
				r.detach(ev.x, ev.err)
			default:
				err = r.frame(ev.x, ev.typ, ev.payload)
			}
			if err != nil {
				r.shutdownAll()
				return err
			}
		}
		if r.doneN == r.total {
			r.linger()
			return nil
		}
	}
}

// linger is the campaign's goodbye phase: the listener and event loop stay
// alive for up to HeartbeatTimeout after the last verdict so that every
// executor actually receives the shutdown frame. On a clean network one
// round suffices; under chaos the frame may be dropped (re-sent every
// beat), corrupted (the executor severs and redials — the handshake is
// answered with shutdown instead of welcome), or the executor may be
// mid-reconnect when the campaign ends. A session is released — removed
// from the table — when its executor closes the connection, which it only
// does once the shutdown was received; the loop exits when every session is
// released or the window closes.
func (r *coordRun) linger() {
	goodbye := func() {
		for _, s := range r.attached() {
			_ = s.conn.send(msgShutdown, nil)
		}
	}
	goodbye()
	deadline := time.NewTimer(r.opts.HeartbeatTimeout)
	defer deadline.Stop()
	beat := time.NewTicker(r.opts.HeartbeatInterval)
	defer beat.Stop()
	for len(r.sessions) > 0 {
		select {
		case <-deadline.C:
			r.shutdownAll()
			return
		case <-beat.C:
			goodbye()
		case ev := <-r.events:
			switch {
			case ev.join:
				// A reconnecting (or stray) executor only needs the goodbye.
				// Its session, if any, is released when it closes the conn.
				if s, ok := r.sessions[ev.rd.Token]; ok {
					if s.conn != nil {
						s.conn.sess = nil
						s.conn.conn.Close()
					}
					s.conn = ev.x
					ev.x.sess = s
				}
				_ = ev.x.send(msgShutdown, nil)
			case ev.err != nil:
				s := ev.x.sess
				ev.x.conn.Close()
				if s != nil && s.conn == ev.x {
					if errors.Is(ev.err, io.EOF) {
						// A clean close between frames: the executor got the
						// shutdown and hung up. Receipt confirmed.
						delete(r.sessions, s.token)
					} else {
						// Severed mid-frame (chaos corruption, reset): the
						// executor may not have seen the goodbye. Hold the
						// session; its redial gets shutdown at the handshake.
						s.conn = nil
					}
				}
			default:
				// Late frames: verdicts are spent duplicates; processing
				// them re-acks so the executor's buffer drains.
				_ = r.frame(ev.x, ev.typ, ev.payload)
			}
		}
	}
	r.shutdownAll() // nothing left attached; clears the hosts gauge
}

// recover replays the sidecar WAL of a crashed coordinator: surviving
// sessions come back detached (their executors redial and re-attach within
// the grace window), their outstanding ranges stay owned, per-unit death
// counts carry over, and units exceeding MaxDeliveries are quarantined
// immediately. With no sidecar (or a fresh one) this is a no-op.
func (r *coordRun) recover() error {
	side := r.opts.Side
	if side == nil || !side.Resumed() {
		return nil
	}
	st, err := replaySide(side, r.opts.Units)
	if err != nil {
		return err
	}
	r.nextToken = st.maxToken + 1
	for u, n := range st.deaths {
		r.deaths[u] = n
	}
	tokens := make([]uint64, 0, len(st.sessions))
	for token := range st.sessions {
		tokens = append(tokens, token)
	}
	sort.Slice(tokens, func(i, j int) bool { return tokens[i] < tokens[j] })
	stillPending := make(map[int]bool, len(r.pending))
	for _, u := range r.pending {
		stillPending[u] = true
	}
	for _, token := range tokens {
		ss := st.sessions[token]
		s := &session{
			token:      token,
			id:         r.nextID,
			name:       ss.name,
			workers:    ss.workers,
			seen:       make(map[uint32]bool),
			detachedAt: time.Now(),
		}
		r.nextID++
		for _, u := range ss.ownedSorted() {
			if r.done[u] {
				continue // journaled before the crash
			}
			r.owner[u] = s
			s.assigned++
			delete(stillPending, u)
		}
		r.sessions[token] = s
		r.opts.Fleet.Joined(token, s.name, s.workers)
		r.opts.Fleet.Detached(token)
		r.fleetAssigned(s)
	}
	pending := r.pending[:0]
	for _, u := range r.pending {
		if stillPending[u] {
			pending = append(pending, u)
		}
	}
	r.pending = pending
	for _, u := range append([]int(nil), r.pending...) {
		if r.deaths[u] >= r.opts.MaxDeliveries {
			r.dropPending(u)
			r.quarantine(u)
		}
	}
	r.started = len(r.sessions) > 0
	r.opts.Tracer.Emit(telemetry.Event{Kind: telemetry.KindCoordRecovered,
		Detail: fmt.Sprintf("%d session(s), %d units outstanding, %d pending", len(r.sessions), len(r.owner), len(r.pending))})
	r.opts.logf("fabric: recovered coordinator state: %d session(s) awaiting re-attach, %d units outstanding, %d pending",
		len(r.sessions), len(r.owner), len(r.pending))
	if err := r.fatalErr(); err != nil {
		return err // a quarantine delivery failed
	}
	return nil
}

// nudge re-sends a session's outstanding ranges when it has owned units but
// made no verdict progress for a full HeartbeatTimeout. On a clean link this
// never fires; under chaos it repairs silently dropped assign frames (the
// executor never saw the range) and keeps the campaign converging. A
// re-delivered range is idempotent: the executor deduplicates its queue, and
// any re-executed unit yields a duplicate verdict the done-set drops.
func (r *coordRun) nudge(s *session) {
	if s.assigned == 0 || s.conn == nil {
		return
	}
	last := s.progressAt
	if s.nudgedAt.After(last) {
		last = s.nudgedAt
	}
	if time.Since(last) < r.opts.HeartbeatTimeout {
		return
	}
	s.nudgedAt = time.Now()
	var outstanding []int
	for u, o := range r.owner {
		if o == s && !r.done[u] {
			outstanding = append(outstanding, u)
		}
	}
	if len(outstanding) == 0 {
		return
	}
	sort.Ints(outstanding)
	r.opts.logf("fabric: %s made no progress for %v; re-sending %d outstanding unit(s)",
		s.name, r.opts.HeartbeatTimeout, len(outstanding))
	if err := s.conn.send(msgAssign, encodeRuns(outstanding)); err != nil {
		r.detach(s.conn, fmt.Errorf("assign write: %w", err))
	}
}

// dropPending removes one unit from the pending slice.
func (r *coordRun) dropPending(unit int) {
	for i, u := range r.pending {
		if u == unit {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			return
		}
	}
}

// side appends one record to the sidecar WAL. Append failures degrade
// recovery (a restarted coordinator redelivers more than it had to) but
// never the running campaign, so they are logged, not fatal.
func (r *coordRun) side(kind uint8, payload []byte) {
	if r.opts.Side == nil {
		return
	}
	if err := r.opts.Side.Append(kind, payload); err != nil {
		r.opts.logf("fabric: sidecar append failed (recovery state degraded): %v", err)
	}
}

// handshake runs the coordinator side of one executor's handshake: hello
// out, ready in (tolerating heartbeats), validation. A mismatched executor
// is rejected — error frame, close — without disturbing the campaign: at
// fleet scale a stray join must not kill a half-finished run.
func (c *Coordinator) handshake(conn net.Conn, r *coordRun) {
	x := &executorConn{conn: conn, wtimeout: c.opts.HeartbeatTimeout}
	reject := func(err error) {
		c.opts.logf("fabric: rejecting %s: %v", conn.RemoteAddr(), err)
		_ = x.send(msgError, []byte(err.Error()))
		conn.Close()
	}
	if err := x.send(msgHello, encodeHello(hello{
		Version:           ProtocolVersion,
		HeartbeatInterval: c.opts.HeartbeatInterval,
		HeartbeatTimeout:  c.opts.HeartbeatTimeout,
		Spec:              c.opts.Spec,
	})); err != nil {
		conn.Close()
		return
	}
	for {
		_ = conn.SetReadDeadline(time.Now().Add(c.opts.HeartbeatTimeout))
		typ, payload, err := worker.ReadFrameCRC(conn)
		if err != nil {
			// A torn or corrupt stream is a transport failure, not a
			// rejection: close silently so the executor redials, rather
			// than sending an error frame it would treat as fatal.
			c.noteBadFrame(err)
			c.opts.logf("fabric: dropping %s during handshake: %v", conn.RemoteAddr(), err)
			conn.Close()
			return
		}
		switch typ {
		case msgHeartbeat:
			continue // re-planning inside the executor; keep waiting
		case msgError:
			reject(fmt.Errorf("executor error during handshake: %s", payload))
			return
		case msgReady:
			rd, err := decodeReady(payload)
			if err != nil {
				reject(err)
				return
			}
			if rd.Version != ProtocolVersion {
				reject(fmt.Errorf("executor speaks protocol version %d, coordinator speaks %d", rd.Version, ProtocolVersion))
				return
			}
			if rd.Fingerprint != c.opts.Spec.Fingerprint {
				reject(fmt.Errorf("executor rebuilt plan fingerprint %016x, coordinator planned %016x — differing builds or configuration", rd.Fingerprint, c.opts.Spec.Fingerprint))
				return
			}
			if int(rd.Units) != c.opts.Units {
				reject(fmt.Errorf("executor plan has %d units, coordinator planned %d", rd.Units, c.opts.Units))
				return
			}
			if rd.Name == "" {
				rd.Name = conn.RemoteAddr().String()
			}
			if rd.Workers < 1 {
				rd.Workers = 1
			}
			select {
			case r.events <- event{x: x, join: true, rd: rd}:
			case <-r.stop:
				conn.Close()
				return
			}
			c.readLoop(x, r)
			return
		default:
			reject(fmt.Errorf("frame type %d during handshake", typ))
			return
		}
	}
}

// readLoop pumps one registered executor's frames into the event loop,
// enforcing the silence deadline on every read.
func (c *Coordinator) readLoop(x *executorConn, r *coordRun) {
	for {
		_ = x.conn.SetReadDeadline(time.Now().Add(c.opts.HeartbeatTimeout))
		typ, payload, err := worker.ReadFrameCRC(x.conn)
		ev := event{x: x, typ: typ, payload: payload}
		if err != nil {
			c.noteBadFrame(err)
			ev = event{x: x, err: err}
		}
		select {
		case r.events <- ev:
		case <-r.stop:
			x.conn.Close()
			return
		}
		if err != nil {
			return
		}
	}
}

// noteBadFrame counts checksum-rejected frames — the poisoned-frame path,
// where the connection is severed for re-establishment rather than parsed
// past the corruption.
func (c *Coordinator) noteBadFrame(err error) {
	if errors.Is(err, worker.ErrFrameCRC) {
		if m := c.opts.Metrics; m != nil && m.BadFrames != nil {
			m.BadFrames.Inc()
		}
	}
}

// attached snapshots the attached sessions in id order, so scheduling
// decisions are deterministic for a given event sequence.
func (r *coordRun) attached() []*session {
	ss := make([]*session, 0, len(r.sessions))
	for _, s := range r.sessions {
		if s.conn != nil {
			ss = append(ss, s)
		}
	}
	sort.Slice(ss, func(i, j int) bool { return ss[i].id < ss[j].id })
	return ss
}

func (r *coordRun) hostsGauge() {
	if m := r.opts.Metrics; m != nil && m.Hosts != nil {
		m.Hosts.Set(int64(len(r.attached())))
	}
}

// register handles a completed handshake: either re-attaching an executor
// to its surviving session (the ready frame presented a known token) or
// opening a fresh session. The welcome frame always precedes any assign on
// the new connection.
func (r *coordRun) register(x *executorConn, rd ready) {
	if rd.Token != 0 {
		if s, ok := r.sessions[rd.Token]; ok {
			r.reattach(x, s)
			return
		}
		// Unknown or expired token: the session's units were redelivered;
		// fall through to a fresh session. Verdicts the executor still
		// retransmits are deduplicated by the done-set.
		r.opts.logf("fabric: executor %s presented expired session %d; opening a fresh session", rd.Name, rd.Token)
	}
	s := &session{
		token:      r.nextToken,
		id:         r.nextID,
		name:       rd.Name,
		workers:    int(rd.Workers),
		conn:       x,
		seen:       make(map[uint32]bool),
		progressAt: time.Now(),
	}
	r.nextToken++
	r.nextID++
	x.sess = s
	r.sessions[s.token] = s
	r.side(sideSession, encodeSideSession(s.token, s.workers, s.name))
	if m := r.opts.Metrics; m != nil && m.HostUnits != nil {
		s.done = m.HostUnits(s.name)
	}
	r.opts.Fleet.Joined(s.token, s.name, s.workers)
	r.hostsGauge()
	if err := x.send(msgWelcome, encodeWelcome(welcome{Token: s.token})); err != nil {
		r.detach(x, fmt.Errorf("welcome write: %w", err))
		return
	}
	r.opts.Tracer.Emit(telemetry.Event{Kind: telemetry.KindHostJoined, Detail: fmt.Sprintf("%s (%d workers)", s.name, s.workers)})
	r.opts.logf("fabric: executor %s joined (%d workers; %d/%d hosts)", s.name, s.workers, len(r.attached()), r.opts.MinHosts)
	r.schedule()
}

// reattach binds a new connection to a surviving session: welcome carries
// the ack watermark so the executor prunes its retransmit buffer, and the
// session's outstanding units are re-sent (idempotently — the executor
// deduplicates its queue) in case the original assign died in a partition.
func (r *coordRun) reattach(x *executorConn, s *session) {
	if s.conn != nil {
		// The old connection is half-open (the executor gave up on it
		// first). Drop it; its reader will surface a stale error we ignore.
		s.conn.sess = nil
		s.conn.conn.Close()
	}
	s.conn = x
	s.detachedAt = time.Time{}
	s.progressAt = time.Now()
	x.sess = s
	if m := r.opts.Metrics; m != nil && m.Resumed != nil {
		m.Resumed.Inc()
	}
	r.opts.Fleet.Joined(s.token, s.name, s.workers)
	r.fleetAssigned(s)
	r.hostsGauge()
	if err := x.send(msgWelcome, encodeWelcome(welcome{Token: s.token, Resumed: true, Acked: s.seq})); err != nil {
		r.detach(x, fmt.Errorf("welcome write: %w", err))
		return
	}
	var outstanding []int
	for u, o := range r.owner {
		if o == s && !r.done[u] {
			outstanding = append(outstanding, u)
		}
	}
	sort.Ints(outstanding)
	r.opts.Tracer.Emit(telemetry.Event{Kind: telemetry.KindHostResumed,
		Detail: fmt.Sprintf("%s (session %d, %d units outstanding)", s.name, s.token, len(outstanding))})
	r.opts.logf("fabric: executor %s re-attached to session %d (%d units outstanding, acked seq %d)",
		s.name, s.token, len(outstanding), s.seq)
	if len(outstanding) > 0 {
		// Not recorded in the sidecar: ownership is unchanged.
		if err := x.send(msgAssign, encodeRuns(outstanding)); err != nil {
			r.detach(x, fmt.Errorf("assign write: %w", err))
			return
		}
	}
	r.schedule()
}

// detach handles a lost connection: the session survives, detached, for
// SessionTimeout — the grace window in which its executor may redial and
// re-attach with every assignment intact. Only expiry redelivers.
func (r *coordRun) detach(x *executorConn, err error) {
	s := x.sess
	x.conn.Close()
	if s == nil || s.conn != x {
		return // pre-registration conn, or already replaced by a reconnect
	}
	s.conn = nil
	s.detachedAt = time.Now()
	r.opts.Fleet.Detached(s.token)
	r.hostsGauge()
	r.opts.Tracer.Emit(telemetry.Event{Kind: telemetry.KindHostDetached,
		Detail: fmt.Sprintf("%s: %v (session %d; %v grace)", s.name, err, s.token, r.opts.SessionTimeout)})
	r.opts.logf("fabric: lost connection to %s (%v); session %d has %v to re-attach",
		s.name, err, s.token, r.opts.SessionTimeout)
}

// expireDetached declares sessions dead once their grace window closes:
// unfinished units go back to pending (counting one delivery each;
// exhausted units are quarantined) and the fleet is rescheduled.
func (r *coordRun) expireDetached() {
	var expired []*session
	for _, s := range r.sessions {
		if s.conn == nil && time.Since(s.detachedAt) > r.opts.SessionTimeout {
			expired = append(expired, s)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i].id < expired[j].id })
	for _, s := range expired {
		r.expire(s)
	}
}

func (r *coordRun) expire(s *session) {
	delete(r.sessions, s.token)
	r.side(sideExpire, encodeSideExpire(s.token))
	r.opts.Fleet.Expired(s.token)
	var lost []int
	for u, o := range r.owner {
		if o == s {
			lost = append(lost, u)
		}
	}
	sort.Ints(lost)
	m := r.opts.Metrics
	if m != nil && m.HostDeaths != nil {
		m.HostDeaths.Inc()
	}
	r.opts.Tracer.Emit(telemetry.Event{Kind: telemetry.KindHostLost,
		Detail: fmt.Sprintf("%s: grace expired (%d units redelivered)", s.name, len(lost))})
	r.opts.logf("fabric: executor %s never re-attached; session %d expired, redelivering %d units", s.name, s.token, len(lost))
	for _, u := range lost {
		delete(r.owner, u)
		r.deaths[u]++
		if r.deaths[u] >= r.opts.MaxDeliveries {
			r.quarantine(u)
			continue
		}
		if m != nil && m.Redelivered != nil {
			m.Redelivered.Inc()
		}
		r.pending = append(r.pending, u)
	}
	sort.Ints(r.pending)
	r.schedule()
}

// quarantine records the Quarantine outcome for a unit that went down with
// MaxDeliveries executor hosts.
func (r *coordRun) quarantine(u int) {
	if r.done[u] {
		return
	}
	r.done[u] = true
	r.doneN++
	if m := r.opts.Metrics; m != nil && m.Quarantines != nil {
		m.Quarantines.Inc()
	}
	r.opts.Tracer.Emit(telemetry.Event{Kind: telemetry.KindQuarantine, Unit: u, Detail: "exhausted executor-host deliveries"})
	r.opts.logf("fabric: unit %d went down with %d executor hosts; quarantined as host fault", u, r.deaths[u])
	r.deliver(worker.Result{Index: u, Outcome: r.opts.Quarantine, Quarantined: true})
}

// deliver invokes onResult; an error is remembered as fatal by frame().
func (r *coordRun) deliver(res worker.Result) {
	if r.onRes == nil {
		return
	}
	if err := r.onRes(res); err != nil {
		// Surface through the loop: stash as a synthetic fatal event.
		r.fatal = err
	}
}

// frame handles one frame from a registered executor. A returned error is
// fatal to the whole run (onResult failure or an executor-reported fatal
// unit error — the same unit would fail on any host).
func (r *coordRun) frame(x *executorConn, typ uint8, payload []byte) error {
	s := x.sess
	if s == nil || s.conn != x {
		x.conn.Close() // stale conn replaced by a reconnect; drop its frames
		return r.fatalErr()
	}
	r.opts.Fleet.Seen(s.token)
	switch typ {
	case msgHeartbeat:
		return r.fatalErr()
	case msgTelemetry:
		sentUS, entries, err := decodeSnapshot(payload, maxSnapEntries)
		if err != nil {
			r.detach(x, err)
			return r.fatalErr()
		}
		r.ingestSnapshot(s, sentUS, entries)
		return r.fatalErr()
	case msgTrace:
		sentUS, evs, err := decodeTraceEvents(payload, maxTraceEvents)
		if err != nil {
			r.detach(x, err)
			return r.fatalErr()
		}
		r.ingestTrace(s, sentUS, evs)
		return r.fatalErr()
	case msgError:
		return fmt.Errorf("fabric: executor %s: %s", s.name, payload)
	case msgVerdict:
		v, err := decodeVerdict(payload)
		if err != nil {
			r.detach(x, err)
			return r.fatalErr()
		}
		u := int(v.Unit)
		if u < 0 || u >= r.opts.Units {
			r.detach(x, fmt.Errorf("verdict for unit %d outside the %d-unit plan", u, r.opts.Units))
			return r.fatalErr()
		}
		if v.Seq <= s.seq || s.seen[v.Seq] {
			// A retransmit of a verdict this session already processed;
			// re-ack the watermark so the executor prunes its buffer.
			_ = x.send(msgAck, encodeAck(s.seq))
			return r.fatalErr()
		}
		// The ack is cumulative (TCP-style): s.seq is the highest seq below
		// which everything was processed. A chaos-dropped write leaves a gap
		// — later verdicts still arrive on the healthy connection — so gaps
		// are tracked in s.seen and the watermark only advances when the
		// executor's stall retransmit fills them.
		s.seen[v.Seq] = true
		for s.seen[s.seq+1] {
			delete(s.seen, s.seq+1)
			s.seq++
		}
		s.progressAt = time.Now()
		if r.done[u] {
			// Duplicate from a steal race, a redelivery, or a pre-restart
			// journal append; the verdict is spent.
			_ = x.send(msgAck, encodeAck(s.seq))
			return r.fatalErr()
		}
		r.done[u] = true
		r.doneN++
		if o := r.owner[u]; o != nil {
			o.assigned--
			delete(r.owner, u)
		}
		if s.done != nil {
			s.done.Inc()
		}
		r.opts.Fleet.Merged(s.token, r.doneN)
		r.deliver(worker.Result{Index: u, Outcome: v.Outcome, Payload: v.Payload})
		if err := r.fatalErr(); err != nil {
			return err
		}
		// Ack only after deliver: every seq at or below the watermark has
		// been journaled, so an executor that prunes on this ack can never
		// strand an unjournaled verdict.
		if err := x.send(msgAck, encodeAck(s.seq)); err != nil {
			r.detach(x, fmt.Errorf("ack write: %w", err))
			return r.fatalErr()
		}
		r.schedule()
		return nil
	default:
		r.detach(x, fmt.Errorf("unexpected frame type %d", typ))
		return r.fatalErr()
	}
}

// fatal holds the first onResult error; fatalErr drains it.
func (r *coordRun) fatalErr() error { return r.fatal }

// schedule is the whole balancing policy, run after every join, verdict
// and expiry:
//
//  1. Nothing happens until MinHosts executors are ready; then the pending
//     set (the full todo on a fresh start) is cut into contiguous ranges
//     weighted by each host's worker count — the initial shard.
//  2. Units returned by a session expiry are redistributed the same way.
//  3. With nothing pending, an idle executor steals the top half (by plan
//     index) of the most-loaded *attached* executor's unfinished units: the
//     victim is revoked the range, the thief is assigned it. Detached
//     sessions are never stolen from — their executors are presumed to be
//     reconnecting, still executing; expiry, not theft, reclaims their
//     units. Executors run their ranges in ascending order, so the stolen
//     tail is the least likely to be in flight; a unit that was anyway
//     produces a duplicate verdict, which the merge drops.
func (r *coordRun) schedule() {
	xs := r.attached()
	if !r.started {
		if len(xs) < r.opts.MinHosts {
			return
		}
		r.started = true
		r.opts.logf("fabric: %d executor(s) ready; sharding %d units", len(xs), len(r.pending))
	}
	if len(xs) == 0 {
		return
	}
	if len(r.pending) > 0 {
		r.distribute(xs, r.pending)
		r.pending = nil
		return
	}
	for _, thief := range xs {
		if thief.assigned > 0 {
			continue
		}
		var victim *session
		for _, s := range xs {
			if s == thief {
				continue
			}
			if victim == nil || s.assigned > victim.assigned {
				victim = s
			}
		}
		if victim == nil || victim.assigned < 2 {
			continue
		}
		var units []int
		for u, o := range r.owner {
			if o == victim {
				units = append(units, u)
			}
		}
		sort.Ints(units)
		stolen := units[len(units)-len(units)/2:]
		for _, u := range stolen {
			r.owner[u] = thief
		}
		victim.assigned -= len(stolen)
		thief.assigned += len(stolen)
		r.side(sideRevoke, encodeSideUnits(victim.token, stolen))
		r.side(sideAssign, encodeSideUnits(thief.token, stolen))
		r.fleetAssigned(victim)
		r.fleetAssigned(thief)
		if m := r.opts.Metrics; m != nil && m.Steals != nil {
			m.Steals.Inc()
		}
		r.opts.Tracer.Emit(telemetry.Event{Kind: telemetry.KindSteal, Detail: fmt.Sprintf("%d units %s -> %s", len(stolen), victim.name, thief.name)})
		r.opts.logf("fabric: %s stole %d units from %s", thief.name, len(stolen), victim.name)
		if err := victim.conn.send(msgRevoke, encodeRuns(stolen)); err != nil {
			r.detach(victim.conn, fmt.Errorf("revoke write: %w", err))
			// The stolen units stay with the thief either way.
		}
		r.assign(thief, stolen)
	}
}

// distribute cuts a sorted unit set into contiguous slices weighted by each
// executor's worker count and assigns them in id order.
func (r *coordRun) distribute(xs []*session, units []int) {
	totalW := 0
	for _, s := range xs {
		totalW += s.workers
	}
	start, given := 0, 0
	for i, s := range xs {
		var n int
		if i == len(xs)-1 {
			n = len(units) - start
		} else {
			given += s.workers
			n = len(units)*given/totalW - start
		}
		if n <= 0 {
			continue
		}
		slice := units[start : start+n]
		start += n
		for _, u := range slice {
			r.owner[u] = s
		}
		s.assigned += len(slice)
		r.side(sideAssign, encodeSideUnits(s.token, slice))
		r.fleetAssigned(s)
		r.assign(s, slice)
	}
}

// assign ships one sorted unit set to an attached session. The owner and
// sidecar bookkeeping are the caller's; assign only encodes, counts and
// writes.
func (r *coordRun) assign(s *session, units []int) {
	if len(units) == 0 || s.conn == nil {
		return
	}
	if m := r.opts.Metrics; m != nil && m.Assigned != nil {
		m.Assigned.Add(uint64(len(units)))
	}
	r.opts.Tracer.Emit(telemetry.Event{Kind: telemetry.KindRangeAssigned, Detail: fmt.Sprintf("%d units -> %s", len(units), s.name)})
	if err := s.conn.send(msgAssign, encodeRuns(units)); err != nil {
		r.detach(s.conn, fmt.Errorf("assign write: %w", err))
	}
}

// shutdownAll releases every attached executor (best effort) and closes the
// fleet. Detached sessions have no connection to release; their executors'
// reconnect windows expire against a closed port.
func (r *coordRun) shutdownAll() {
	for _, s := range r.attached() {
		_ = s.conn.send(msgShutdown, nil)
		s.conn.conn.Close()
		s.conn = nil
	}
	if m := r.opts.Metrics; m != nil && m.Hosts != nil {
		m.Hosts.Set(0)
	}
}
