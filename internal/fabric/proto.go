// Package fabric is the distributed campaign layer: it lifts the worker
// protocol's framing (internal/worker) off stdin/stdout onto TCP so one
// coordinator process can shard a campaign's plan-index space across
// executor processes on other hosts, work-steal from stragglers, and merge
// the verdict stream deterministically.
//
// The division of labour mirrors the single-host stack one level up. The
// coordinator plans the campaign serially (exactly as a local run would),
// listens for executors, and owns the scheduling policy: initial contiguous
// range shards weighted by each host's worker count, half-range steals when
// a host goes idle, redelivery of a dead host's unfinished units, and
// at-most-N host deaths before a unit is quarantined. Executors rebuild the
// identical plan from the spec in the hello frame — the plan itself is
// never shipped, only the Config that determines it, cross-checked by the
// plan fingerprint — and run their assigned ranges on the whole local
// stack: machine pools, golden checkpointing, the block engine, and
// optionally the process-isolation sandbox.
//
// Because verdicts are deterministic (the repository-wide bit-identical
// contract), duplicate execution is harmless: a unit that was stolen while
// in flight, or redelivered after a host died mid-range, produces the same
// verdict twice and the second copy is dropped at the merge. That is what
// keeps the scheduling policy simple — nothing needs distributed consensus,
// only the coordinator's single-threaded event loop.
//
// The wire protocol, version 2 (all integers little-endian), framed as the
// worker protocol's CRC form (length u32 | type u8 | payload | crc32 u32,
// length counting type+payload+crc, MaxFrame-bounded). Version 1 spoke the
// plain frame form over a trusted loopback; version 2 assumes the network
// itself is under fault injection, so every frame is checksummed and a
// poisoned frame severs the connection for re-establishment rather than
// desynchronizing the stream:
//
//	hello     version u16 | heartbeat-ms u32 | deadline-ms u32 |
//	          fingerprint u64 | kind-len u16 | kind | spec-len u32 | spec
//	ready     version u16 | fingerprint u64 | units u32 | workers u32 |
//	          token u64 | name-len u16 | name
//	assign    runs u32 | (start u32 | count u32)*
//	revoke    runs u32 | (start u32 | count u32)*
//	verdict   seq u32 | unit u32 | mode u8 | flags u8 |
//	          payload-len u32 | payload
//	heartbeat (empty, both directions)
//	shutdown  (empty; campaign complete, executor exits cleanly)
//	error     message (UTF-8; either side aborts the campaign)
//	welcome   token u64 | resumed u8 | acked u32
//	ack       seq u32
//	telemetry sent-us i64 | count u32 |
//	          (name-len u16 | name | value u64)*
//	trace     sent-us i64 | count u32 |
//	          (t-us i64 | dur-us i64 | unit u32 | case u32 | worker u32 |
//	           kind-len u16 | kind | program-len u16 | program |
//	           fault-len u16 | fault | mode-len u16 | mode |
//	           detail-len u16 | detail)*
//
// The coordinator opens with hello; the executor answers ready after
// re-planning, echoing the negotiated version and the plan fingerprint it
// reconstructed, plus its session token — zero on a first join, the token
// from the welcome frame when re-attaching after a connection loss. The
// coordinator answers ready with welcome: the session token to present next
// time, whether the session resumed (an existing session's assignments
// survive the reconnect), and the highest verdict sequence number it has
// processed, which lets the executor prune its retransmit buffer.
//
// Assign and revoke carry run-length-encoded sorted unit sets: a fresh
// campaign's shard is one run, a resumed campaign's holes make more.
// Verdict mode/flags use the journal.Outcome wire encoding, the same bytes
// the journal appends and the worker protocol ships, so a verdict crosses
// host, supervisor and journal without translation. Each verdict carries a
// per-session sequence number, acknowledged by the coordinator only after
// the verdict is durably journaled; unacknowledged verdicts are buffered by
// the executor and retransmitted on re-attach, where the sequence number
// (and, behind it, the done-set) makes duplicate delivery idempotent.
//
// Telemetry and trace frames are the federation plane (DESIGN.md §5k):
// executors push them to the coordinator on the heartbeat cadence, strictly
// best-effort — unacknowledged, never retransmitted, dropped whenever
// sending would contend with the verdict path. Telemetry frames carry
// absolute (cumulative) counter values, so a dropped frame is healed by the
// next one; trace frames carry batched executor-local events, host
// attribution is stamped by the coordinator from the authenticated session
// (never trusted from the wire), and sent-us — the executor's wall clock at
// send time — is the per-frame clock-offset sample used to map executor
// timestamps onto the coordinator's clock in the merged trace.
package fabric

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"repro/internal/journal"
	"repro/internal/telemetry"
	"repro/internal/worker"
)

// ProtocolVersion is the fabric frame-format version sent in hello and
// echoed in ready. Mixed-build coordinator/executor pairs fail the
// handshake instead of mis-parsing frames.
const ProtocolVersion = 2

// Message types. The numbering space is independent of the worker
// protocol's — the two never share a stream.
const (
	msgHello uint8 = 1 + iota
	msgReady
	msgAssign
	msgRevoke
	msgVerdict
	msgHeartbeat
	msgShutdown
	msgError
	msgWelcome
	msgAck
	msgTelemetry
	msgTrace
)

// hello is the coordinator's opening frame.
type hello struct {
	Version           uint16
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	Spec              worker.Spec
}

// ready is the executor's handshake answer. Token is zero on a first join
// and the welcome-issued session token when re-attaching.
type ready struct {
	Version     uint16
	Fingerprint uint64
	Units       uint32
	Workers     uint32
	Token       uint64
	Name        string
}

// welcome is the coordinator's answer to ready: the session identity the
// executor keeps across reconnects, whether an existing session's
// assignments survived, and the retransmit-buffer watermark.
type welcome struct {
	Token   uint64
	Resumed bool
	Acked   uint32
}

// verdict is one completed unit crossing back to the coordinator. Seq is
// the per-session sequence number (1-based; monotone over the session's
// whole lifetime, reconnects included).
type verdict struct {
	Seq     uint32
	Unit    uint32
	Outcome journal.Outcome
	Payload []byte
}

func encodeHello(h hello) []byte {
	kind := []byte(h.Spec.Kind)
	buf := make([]byte, 0, 24+len(kind)+len(h.Spec.Payload))
	buf = binary.LittleEndian.AppendUint16(buf, h.Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.HeartbeatInterval/time.Millisecond))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.HeartbeatTimeout/time.Millisecond))
	buf = binary.LittleEndian.AppendUint64(buf, h.Spec.Fingerprint)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(kind)))
	buf = append(buf, kind...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.Spec.Payload)))
	buf = append(buf, h.Spec.Payload...)
	return buf
}

func decodeHello(b []byte) (hello, error) {
	var h hello
	if len(b) < 24 {
		return h, fmt.Errorf("fabric: hello frame too short (%d bytes)", len(b))
	}
	h.Version = binary.LittleEndian.Uint16(b[0:2])
	h.HeartbeatInterval = time.Duration(binary.LittleEndian.Uint32(b[2:6])) * time.Millisecond
	h.HeartbeatTimeout = time.Duration(binary.LittleEndian.Uint32(b[6:10])) * time.Millisecond
	h.Spec.Fingerprint = binary.LittleEndian.Uint64(b[10:18])
	kn := int(binary.LittleEndian.Uint16(b[18:20]))
	b = b[20:]
	if len(b) < kn+4 {
		return h, fmt.Errorf("fabric: hello frame truncated in kind")
	}
	h.Spec.Kind = string(b[:kn])
	b = b[kn:]
	pn := int(binary.LittleEndian.Uint32(b[:4]))
	b = b[4:]
	if len(b) != pn {
		return h, fmt.Errorf("fabric: hello spec length %d, frame holds %d", pn, len(b))
	}
	h.Spec.Payload = b
	return h, nil
}

func encodeReady(r ready) []byte {
	name := []byte(r.Name)
	buf := make([]byte, 0, 28+len(name))
	buf = binary.LittleEndian.AppendUint16(buf, r.Version)
	buf = binary.LittleEndian.AppendUint64(buf, r.Fingerprint)
	buf = binary.LittleEndian.AppendUint32(buf, r.Units)
	buf = binary.LittleEndian.AppendUint32(buf, r.Workers)
	buf = binary.LittleEndian.AppendUint64(buf, r.Token)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	return buf
}

func decodeReady(b []byte) (ready, error) {
	var r ready
	if len(b) < 28 {
		return r, fmt.Errorf("fabric: ready frame too short (%d bytes)", len(b))
	}
	r.Version = binary.LittleEndian.Uint16(b[0:2])
	r.Fingerprint = binary.LittleEndian.Uint64(b[2:10])
	r.Units = binary.LittleEndian.Uint32(b[10:14])
	r.Workers = binary.LittleEndian.Uint32(b[14:18])
	r.Token = binary.LittleEndian.Uint64(b[18:26])
	nn := int(binary.LittleEndian.Uint16(b[26:28]))
	if len(b)-28 != nn {
		return r, fmt.Errorf("fabric: ready name length %d, frame holds %d", nn, len(b)-28)
	}
	r.Name = string(b[28:])
	return r, nil
}

func encodeWelcome(w welcome) []byte {
	buf := make([]byte, 0, 13)
	buf = binary.LittleEndian.AppendUint64(buf, w.Token)
	if w.Resumed {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, w.Acked)
	return buf
}

func decodeWelcome(b []byte) (welcome, error) {
	var w welcome
	if len(b) != 13 {
		return w, fmt.Errorf("fabric: welcome frame is %d bytes, want 13", len(b))
	}
	w.Token = binary.LittleEndian.Uint64(b[0:8])
	w.Resumed = b[8] != 0
	w.Acked = binary.LittleEndian.Uint32(b[9:13])
	return w, nil
}

func encodeAck(seq uint32) []byte {
	return binary.LittleEndian.AppendUint32(nil, seq)
}

func decodeAck(b []byte) (uint32, error) {
	if len(b) != 4 {
		return 0, fmt.Errorf("fabric: ack frame is %d bytes, want 4", len(b))
	}
	return binary.LittleEndian.Uint32(b), nil
}

func encodeVerdict(v verdict) []byte {
	buf := make([]byte, 0, 14+len(v.Payload))
	buf = binary.LittleEndian.AppendUint32(buf, v.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, v.Unit)
	buf = append(buf, v.Outcome.Mode, v.Outcome.Flags())
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Payload)))
	buf = append(buf, v.Payload...)
	return buf
}

func decodeVerdict(b []byte) (verdict, error) {
	var v verdict
	if len(b) < 14 {
		return v, fmt.Errorf("fabric: verdict frame too short (%d bytes)", len(b))
	}
	v.Seq = binary.LittleEndian.Uint32(b[0:4])
	v.Unit = binary.LittleEndian.Uint32(b[4:8])
	v.Outcome = journal.DecodeOutcome(b[8], b[9])
	pn := int(binary.LittleEndian.Uint32(b[10:14]))
	if len(b)-14 != pn {
		return v, fmt.Errorf("fabric: verdict payload length %d, frame holds %d", pn, len(b)-14)
	}
	if pn > 0 {
		v.Payload = b[14:]
	}
	return v, nil
}

// encodeRuns compresses a sorted unit-index set into run-length form: the
// assign/revoke payload. Callers must pass sorted, duplicate-free indices.
func encodeRuns(units []int) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, 0)
	runs := uint32(0)
	for i := 0; i < len(units); {
		start := units[i]
		j := i + 1
		for j < len(units) && units[j] == units[j-1]+1 {
			j++
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(start))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(j-i))
		runs++
		i = j
	}
	binary.LittleEndian.PutUint32(buf[0:4], runs)
	return buf
}

// decodeRuns expands a run-length payload back into sorted unit indices.
// maxUnits bounds the total expansion, so a hostile frame cannot make the
// receiver allocate beyond the plan's own size.
func decodeRuns(b []byte, maxUnits int) ([]int, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("fabric: run-set frame too short (%d bytes)", len(b))
	}
	runs := int(binary.LittleEndian.Uint32(b[0:4]))
	b = b[4:]
	if len(b) != runs*8 {
		return nil, fmt.Errorf("fabric: run-set claims %d runs, frame holds %d bytes", runs, len(b))
	}
	var units []int
	for i := 0; i < runs; i++ {
		start := int(binary.LittleEndian.Uint32(b[i*8 : i*8+4]))
		count := int(binary.LittleEndian.Uint32(b[i*8+4 : i*8+8]))
		if count == 0 {
			return nil, fmt.Errorf("fabric: empty run in run-set")
		}
		if len(units)+count > maxUnits {
			return nil, fmt.Errorf("fabric: run-set expands past the plan's %d units", maxUnits)
		}
		for u := start; u < start+count; u++ {
			units = append(units, u)
		}
	}
	if !sort.IntsAreSorted(units) {
		return nil, fmt.Errorf("fabric: run-set is not sorted")
	}
	return units, nil
}

// Federation frame bounds: how many entries a single telemetry frame and
// how many events a single trace frame may claim. Well past anything the
// executor sends (it caps its own batches at these sizes), tight enough
// that a hostile frame cannot make the coordinator allocate unboundedly.
const (
	maxSnapEntries = 4096
	maxTraceEvents = 4096
)

// snapEntry is one metric in a telemetry snapshot frame: a registry name
// (possibly label-suffixed) and its absolute cumulative value.
type snapEntry struct {
	Name  string
	Value uint64
}

// appendString appends a u16-length-prefixed string (federation frames'
// string form). Strings past the u16 range are truncated — observation
// data, never correctness data.
func appendString(buf []byte, s string) []byte {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// takeString consumes a u16-length-prefixed string from b.
func takeString(b []byte, what string) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("fabric: %s frame truncated in string length", what)
	}
	n := int(binary.LittleEndian.Uint16(b[0:2]))
	b = b[2:]
	if len(b) < n {
		return "", nil, fmt.Errorf("fabric: %s frame truncated in string body", what)
	}
	return string(b[:n]), b[n:], nil
}

// encodeSnapshot builds a telemetry frame: the sender's wall clock in unix
// microseconds (the clock-offset sample) plus absolute counter values.
func encodeSnapshot(sentUS int64, entries []snapEntry) []byte {
	if len(entries) > maxSnapEntries {
		entries = entries[:maxSnapEntries]
	}
	buf := make([]byte, 0, 12+len(entries)*40)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(sentUS))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = appendString(buf, e.Name)
		buf = binary.LittleEndian.AppendUint64(buf, e.Value)
	}
	return buf
}

// decodeSnapshot parses a telemetry frame. maxEntries bounds what the frame
// may claim.
func decodeSnapshot(b []byte, maxEntries int) (int64, []snapEntry, error) {
	if len(b) < 12 {
		return 0, nil, fmt.Errorf("fabric: telemetry frame too short (%d bytes)", len(b))
	}
	sentUS := int64(binary.LittleEndian.Uint64(b[0:8]))
	count := int(binary.LittleEndian.Uint32(b[8:12]))
	b = b[12:]
	if count > maxEntries {
		return 0, nil, fmt.Errorf("fabric: telemetry frame claims %d entries, max %d", count, maxEntries)
	}
	entries := make([]snapEntry, 0, count)
	for i := 0; i < count; i++ {
		var e snapEntry
		var err error
		e.Name, b, err = takeString(b, "telemetry")
		if err != nil {
			return 0, nil, err
		}
		if len(b) < 8 {
			return 0, nil, fmt.Errorf("fabric: telemetry frame truncated in value")
		}
		e.Value = binary.LittleEndian.Uint64(b[0:8])
		b = b[8:]
		entries = append(entries, e)
	}
	if len(b) != 0 {
		return 0, nil, fmt.Errorf("fabric: telemetry frame has %d trailing bytes", len(b))
	}
	return sentUS, entries, nil
}

// encodeTraceEvents builds a trace frame: the sender's wall clock plus a
// batch of executor-local events. Host is deliberately not on the wire —
// the coordinator stamps it from the authenticated session name.
func encodeTraceEvents(sentUS int64, evs []telemetry.Event) []byte {
	if len(evs) > maxTraceEvents {
		evs = evs[:maxTraceEvents]
	}
	buf := make([]byte, 0, 12+len(evs)*64)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(sentUS))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(evs)))
	for _, e := range evs {
		var tus int64
		if !e.T.IsZero() {
			tus = e.T.UnixMicro()
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(tus))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.DurUS))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Unit))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Case))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Worker))
		buf = appendString(buf, e.Kind)
		buf = appendString(buf, e.Program)
		buf = appendString(buf, e.Fault)
		buf = appendString(buf, e.Mode)
		buf = appendString(buf, e.Detail)
	}
	return buf
}

// decodeTraceEvents parses a trace frame. maxEvents bounds what the frame
// may claim.
func decodeTraceEvents(b []byte, maxEvents int) (int64, []telemetry.Event, error) {
	if len(b) < 12 {
		return 0, nil, fmt.Errorf("fabric: trace frame too short (%d bytes)", len(b))
	}
	sentUS := int64(binary.LittleEndian.Uint64(b[0:8]))
	count := int(binary.LittleEndian.Uint32(b[8:12]))
	b = b[12:]
	if count > maxEvents {
		return 0, nil, fmt.Errorf("fabric: trace frame claims %d events, max %d", count, maxEvents)
	}
	evs := make([]telemetry.Event, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < 28 {
			return 0, nil, fmt.Errorf("fabric: trace frame truncated in event header")
		}
		var e telemetry.Event
		if tus := int64(binary.LittleEndian.Uint64(b[0:8])); tus != 0 {
			e.T = time.UnixMicro(tus).UTC()
		}
		e.DurUS = int64(binary.LittleEndian.Uint64(b[8:16]))
		e.Unit = int(binary.LittleEndian.Uint32(b[16:20]))
		e.Case = int(binary.LittleEndian.Uint32(b[20:24]))
		e.Worker = int(binary.LittleEndian.Uint32(b[24:28]))
		b = b[28:]
		var err error
		for _, dst := range []*string{&e.Kind, &e.Program, &e.Fault, &e.Mode, &e.Detail} {
			*dst, b, err = takeString(b, "trace")
			if err != nil {
				return 0, nil, err
			}
		}
		evs = append(evs, e)
	}
	if len(b) != 0 {
		return 0, nil, fmt.Errorf("fabric: trace frame has %d trailing bytes", len(b))
	}
	return sentUS, evs, nil
}
