// Package workload generates the random input data sets of the paper's
// experiments (§5's intensive tests, §6.2's 300-input test cases) and the
// golden outputs against which failure modes are classified.
//
// Each program kind has one generator; all programs of the same kind run
// the same test case, which is what lets the paper compare injections
// across programs ("all the injections in all the Camelot programs used
// the same test case").
package workload

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/programs"
)

// ContestSeed generates the small fixed "contest test case" that every
// faulty program of the suite passes — the paper's acceptance criterion:
// "only bugs found in programs that passed in the test cases were
// considered as representative of real faults".
const ContestSeed int64 = 11

// ContestCaseCount is the size of the contest test case.
const ContestCaseCount = 3

// ContestCases returns the contest test case for a program kind (shared
// through the Cached case store; treat it as read-only).
func ContestCases(kind programs.Kind) ([]Case, error) {
	return Cached(kind, ContestCaseCount, ContestSeed)
}

// Case is one input data set plus its expected (oracle) output.
type Case struct {
	Input  programs.Input
	Golden string
}

// Generate produces n random input data sets for the given program kind,
// deterministically from the seed, each paired with its oracle output.
func Generate(kind programs.Kind, n int, seed int64) ([]Case, error) {
	rng := rand.New(rand.NewSource(seed))
	oracle := kind.Oracle()
	if oracle == nil {
		return nil, fmt.Errorf("workload: no oracle for kind %v", kind)
	}
	out := make([]Case, 0, n)
	for i := 0; i < n; i++ {
		var in programs.Input
		switch kind {
		case programs.KindCamelot:
			in = camelotInput(rng)
		case programs.KindJamesB:
			in = jamesbInput(rng)
		case programs.KindSOR:
			in = sorInput(rng)
		default:
			return nil, fmt.Errorf("workload: unknown kind %v", kind)
		}
		golden, err := oracle(in)
		if err != nil {
			return nil, fmt.Errorf("workload: oracle rejected generated input: %w", err)
		}
		out = append(out, Case{Input: in, Golden: golden})
	}
	return out, nil
}

// cacheKey identifies one generated case set.
type cacheKey struct {
	kind programs.Kind
	n    int
	seed int64
}

var (
	cacheMu sync.Mutex
	cache   = make(map[cacheKey][]Case)
)

// Cached returns the case set for (kind, n, seed), generating it at most
// once per process and sharing the slice between callers. Generation is
// deterministic, so the cache changes nothing observable — it only avoids
// regenerating inputs and re-running the oracle when campaigns repeat (the
// §6 campaign asks for the same 300-case set once per program of a kind).
// Callers must treat the returned cases as read-only; the canonical slice
// identity also lets downstream caches (cycle calibration) key off it.
func Cached(kind programs.Kind, n int, seed int64) ([]Case, error) {
	key := cacheKey{kind: kind, n: n, seed: seed}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if cs, ok := cache[key]; ok {
		return cs, nil
	}
	cs, err := Generate(kind, n, seed)
	if err != nil {
		return nil, err
	}
	cache[key] = cs
	return cs, nil
}

// camelotInput draws up to maxKnights knights and a king, all uniform on
// the board. The paper allowed up to 63 knights; the cap keeps a single run
// within the simulator's cycle budget and is documented in DESIGN.md.
const maxKnights = 8

func camelotInput(rng *rand.Rand) programs.Input {
	n := int32(rng.Intn(maxKnights + 1))
	ints := []int32{n, int32(rng.Intn(8)), int32(rng.Intn(8))}
	for i := int32(0); i < n; i++ {
		ints = append(ints, int32(rng.Intn(8)), int32(rng.Intn(8)))
	}
	return programs.Input{Ints: ints}
}

// jamesbInput draws a seed and a string. The distribution is tuned so the
// JB.team6 and JB.team7 real faults stay rare, as in the paper's Table 1:
// 2% of seeds are negative and 1% of strings have the maximum length 80.
func jamesbInput(rng *rand.Rand) programs.Input {
	seed := int32(rng.Intn(1 << 20))
	if rng.Float64() < 0.02 {
		seed = -1 - int32(rng.Intn(1<<20))
	}
	length := 1 + rng.Intn(60)
	if rng.Float64() < 0.01 {
		length = 80
	}
	bytes := make([]byte, length)
	for i := range bytes {
		switch r := rng.Float64(); {
		case r < 0.6:
			bytes[i] = byte('a' + rng.Intn(26))
		case r < 0.8:
			bytes[i] = byte('A' + rng.Intn(26))
		case r < 0.9:
			bytes[i] = byte('0' + rng.Intn(10))
		default:
			bytes[i] = []byte(" .,!?-")[rng.Intn(6)]
		}
	}
	return programs.Input{
		Ints:  []int32{seed, int32(length)},
		Bytes: bytes,
	}
}

// sorInput draws an iteration count and the four boundary temperatures.
func sorInput(rng *rand.Rand) programs.Input {
	return programs.Input{Ints: []int32{
		int32(4 + rng.Intn(9)), // 4..12 iterations
		int32(rng.Intn(1001)),
		int32(rng.Intn(1001)),
		int32(rng.Intn(1001)),
		int32(rng.Intn(1001)),
	}}
}
