// Package campaign is the experiment-management layer (the paper's
// "Experiment Management software"): it executes target programs on fresh
// virtual machines, arms faults through the injector, collects outcomes and
// classifies them into the paper's failure modes, and drives the §5
// equivalence experiments and §6 class campaigns.
package campaign

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/fault"
	"repro/internal/golden"
	"repro/internal/injector"
	"repro/internal/programs"
	"repro/internal/vm"
	"repro/internal/workload"
)

// FailureMode is the outcome classification of one run (§6.2).
type FailureMode int

// Failure modes, in the order of the paper's figures. HostFault is not a
// paper mode: it marks a unit whose *host-side* execution failed — the
// interpreter or injector panicked twice, or the unit exceeded its
// wall-clock deadline — and was quarantined so the campaign could finish.
// Target programs can never produce it; any non-zero HostFault count in a
// result points at a bug in this repository, not in the target.
const (
	Correct   FailureMode = iota + 1 // terminated normally, output correct
	Incorrect                        // terminated normally, output wrong
	Hang                             // watchdog expired (dead loop)
	Crash                            // terminated abnormally (hardware exception)
	HostFault                        // host-side failure, unit quarantined (not a paper mode)
)

var modeNames = map[FailureMode]string{
	Correct:   "correct",
	Incorrect: "incorrect",
	Hang:      "hang",
	Crash:     "crash",
	HostFault: "hostfault",
}

// String names the failure mode.
func (f FailureMode) String() string {
	if s, ok := modeNames[f]; ok {
		return s
	}
	return fmt.Sprintf("mode(%d)", int(f))
}

// Modes lists the failure modes in presentation order.
func Modes() []FailureMode { return []FailureMode{Correct, Incorrect, Hang, Crash} }

// RunResult is the outcome of a single program run.
type RunResult struct {
	Mode        FailureMode
	State       vm.State
	Exc         vm.Exc
	Output      string
	Cycles      uint64
	Activations uint64 // 0 for clean runs
	ExitStatus  int32
}

// newMachine builds a fresh machine (the per-injection "reboot") with the
// given cycle budget and the program plus input loaded.
func newMachine(c *cc.Compiled, in programs.Input, maxCycles uint64) (*vm.Machine, error) {
	m := vm.New(vm.Config{MaxCycles: maxCycles})
	if err := m.Load(c.Prog.Image); err != nil {
		return nil, err
	}
	m.SetInput(in.Ints)
	m.SetByteInput(in.Bytes)
	return m, nil
}

// classify maps a finished machine plus the golden output to a failure
// mode. A normal termination with a non-zero exit status counts as a crash
// (the system detected an error), matching the paper's "program terminated
// abnormally" category.
func classify(m *vm.Machine, golden string) (FailureMode, RunResult) {
	res := RunResult{
		State:      m.State(),
		Output:     string(m.Output()),
		Cycles:     m.Cycles(),
		ExitStatus: m.ExitStatus(),
	}
	res.Exc, _ = m.Exception()
	res.Mode = classifyMode(res.State, res.ExitStatus, res.Output, golden)
	return res.Mode, res
}

// classifyMode is the failure-mode decision shared by classify and the
// golden-record shortcut.
func classifyMode(state vm.State, exit int32, output, golden string) FailureMode {
	switch state {
	case vm.StateHung:
		return Hang
	case vm.StateCrashed:
		return Crash
	case vm.StateHalted:
		switch {
		case exit != 0:
			return Crash
		case output == golden:
			return Correct
		default:
			return Incorrect
		}
	default:
		return Crash
	}
}

// resultFromRecord rebuilds the RunResult of a run that was never executed
// because its fault is dormant: the outcome is the golden run's, classified
// against the oracle exactly as classify would.
func resultFromRecord(rec *golden.Record, goldenOut string) RunResult {
	return RunResult{
		Mode:       classifyMode(rec.State, rec.ExitStatus, rec.Output, goldenOut),
		State:      rec.State,
		Exc:        rec.Exc,
		Output:     rec.Output,
		Cycles:     rec.Cycles,
		ExitStatus: rec.ExitStatus,
	}
}

// RunClean executes the program on one input with no fault armed.
func RunClean(c *cc.Compiled, in programs.Input, golden string, maxCycles uint64) (RunResult, error) {
	m, err := newMachine(c, in, maxCycles)
	if err != nil {
		return RunResult{}, err
	}
	if _, err := m.Run(); err != nil {
		return RunResult{}, err
	}
	_, res := classify(m, golden)
	return res, nil
}

// RunWithFault executes the program on one input with the fault armed in
// the given injector mode. Arm errors (e.g. breakpoint exhaustion) are
// returned, not classified.
func RunWithFault(c *cc.Compiled, in programs.Input, golden string, f *fault.Fault, mode injector.Mode, maxCycles uint64) (RunResult, error) {
	m, err := newMachine(c, in, maxCycles)
	if err != nil {
		return RunResult{}, err
	}
	s, err := injector.Arm(m, mode, f)
	if err != nil {
		return RunResult{}, err
	}
	if _, err := m.Run(); err != nil {
		return RunResult{}, err
	}
	_, res := classify(m, golden)
	res.Activations = s.Activations()
	return res, nil
}

// CalibrateCycles measures the clean-run cycle count of every case and
// returns per-case watchdog budgets: a multiple of the clean run plus
// slack. Faulty runs exceeding the budget are classified as hangs — the
// experiment manager's timeout of §6.2. The multiplier leaves room for
// mutations that legitimately lengthen execution (an off-by-one loop bound
// adds a single iteration) while keeping dead loops cheap to detect.
//
// Calibration runs fan out over runtime.GOMAXPROCS(0) workers and the
// budgets are cached per (compiled program, case set); see
// CalibrateCyclesWorkers for the explicit-worker-count form and the
// caching contract.
func CalibrateCycles(c *cc.Compiled, cases []workload.Case) ([]uint64, error) {
	return CalibrateCyclesWorkers(c, cases, 0)
}
