package vm_test

import (
	"testing"

	"repro/internal/programs"
	"repro/internal/vm"
	"repro/internal/workload"
)

// These tests pin the decoded-cache maintenance contract behind Reset and
// Restore: a machine whose text was corrupted — through PlantDecoded or
// injector writes into writable text — must come back bit-identical to a
// fresh machine, and must get there by re-decoding only the touched words.
// A full rebuild (visible through DecodeRebuilds) is permitted only when the
// precise modification list overflows. Campaigns plant one or two words per
// injection across hundreds of thousands of Reset calls, so a redundant
// whole-text rebuild per Reset is exactly the regression these tests exist
// to catch.

// loadTable4 compiles one Table 4 program and one workload input for it.
func loadTable4(t *testing.T) (vm.Image, []int32, []byte) {
	t.Helper()
	p := programs.Table4Programs()[0]
	c, err := p.Compile()
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	cases, err := workload.Generate(p.Kind, 1, 7)
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	return c.Prog.Image, cases[0].Input.Ints, cases[0].Input.Bytes
}

// runOnce loads img into a fresh machine, runs the given input, and returns
// the finished machine.
func runOnce(t *testing.T, img vm.Image, ints []int32, bts []byte) *vm.Machine {
	t.Helper()
	m := vm.New(vm.Config{})
	if err := m.Load(img); err != nil {
		t.Fatal(err)
	}
	m.SetInput(ints)
	m.SetByteInput(bts)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestResetPreciseRedecode: planting decoded corruptions and writing words
// into writable text, then Resetting, must restore fresh-machine behavior
// without a single full decode rebuild — the modification list is precise.
func TestResetPreciseRedecode(t *testing.T) {
	img, ints, bts := loadTable4(t)
	want := snapshot(runOnce(t, img, ints, bts))

	m := vm.New(vm.Config{})
	if err := m.Load(img); err != nil {
		t.Fatal(err)
	}
	base, end := m.TextRange()
	if (end-base)/4 < 48 {
		t.Fatalf("test program too small: %d text words", (end-base)/4)
	}

	// A clean Reset after a plain run must not rebuild anything.
	m.SetInput(ints)
	m.SetByteInput(bts)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if n := m.DecodeRebuilds(); n != 0 {
		t.Fatalf("clean Reset caused %d full decode rebuilds, want 0", n)
	}

	// Corrupt a handful of words through both mutation paths, run the
	// corrupted machine (it may crash — irrelevant here), then Reset.
	if err := m.PlantDecoded(base, 0); err != nil { // OpIllegal at the entry
		t.Fatal(err)
	}
	if err := m.PlantDecoded(base+8, 0xffffffff); err != nil {
		t.Fatal(err)
	}
	m.SetTextWritable(true)
	if err := m.WriteWord(base+16, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if exc, at := m.Exception(); exc != vm.ExcIllegal || at != base {
		t.Fatalf("corrupted entry: exception %v at %#x, want ExcIllegal at %#x", exc, at, base)
	}

	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if n := m.DecodeRebuilds(); n != 0 {
		t.Fatalf("Reset after 3 text mods caused %d full rebuilds, want 0 (precise re-decode)", n)
	}
	m.SetInput(ints)
	m.SetByteInput(bts)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := snapshot(m); !got.equal(want) {
		t.Fatalf("run after precise re-decode diverges from fresh machine:\nfresh: %+v\nreset: %+v", want, got)
	}
}

// TestResetRebuildOnOverflow: past the precise-list capacity the machine
// must fall back to exactly one full rebuild on Reset — and still come back
// bit-identical to a fresh machine.
func TestResetRebuildOnOverflow(t *testing.T) {
	img, ints, bts := loadTable4(t)
	want := snapshot(runOnce(t, img, ints, bts))

	m := vm.New(vm.Config{})
	if err := m.Load(img); err != nil {
		t.Fatal(err)
	}
	base, end := m.TextRange()
	words := (end - base) / 4
	if words < 48 {
		t.Fatalf("test program too small: %d text words", words)
	}
	for i := uint32(0); i < 40; i++ { // well past the 32-entry precise list
		if err := m.PlantDecoded(base+i*4, 0xffffffff); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if n := m.DecodeRebuilds(); n != 1 {
		t.Fatalf("Reset after 40 text mods caused %d full rebuilds, want exactly 1", n)
	}
	m.SetInput(ints)
	m.SetByteInput(bts)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := snapshot(m); !got.equal(want) {
		t.Fatalf("run after overflow rebuild diverges from fresh machine:\nfresh: %+v\nreset: %+v", want, got)
	}

	// A subsequent clean Reset must not rebuild again.
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if n := m.DecodeRebuilds(); n != 1 {
		t.Fatalf("clean Reset after the overflow caused more rebuilds: %d, want still 1", n)
	}
}

// TestRestorePreciseRedecode: Restore un-plants decoded corruptions the same
// way Reset does — precisely, without a full rebuild — so fast-forwarded
// injections (snapshot → plant → run → restore) stay cheap.
func TestRestorePreciseRedecode(t *testing.T) {
	img, ints, bts := loadTable4(t)
	want := snapshot(runOnce(t, img, ints, bts))

	m := vm.New(vm.Config{})
	if err := m.Load(img); err != nil {
		t.Fatal(err)
	}
	base, _ := m.TextRange()
	snap := m.Snapshot()
	if snap == nil {
		t.Fatal("nil snapshot of a loaded machine")
	}

	if err := m.PlantDecoded(base, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if exc, at := m.Exception(); exc != vm.ExcIllegal || at != base {
		t.Fatalf("planted entry: exception %v at %#x, want ExcIllegal at %#x", exc, at, base)
	}

	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if n := m.DecodeRebuilds(); n != 0 {
		t.Fatalf("Restore after a plant caused %d full rebuilds, want 0 (precise re-decode)", n)
	}
	m.SetInput(ints)
	m.SetByteInput(bts)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := snapshot(m); !got.equal(want) {
		t.Fatalf("run after Restore diverges from fresh machine:\nfresh:    %+v\nrestored: %+v", want, got)
	}
}
