package journal_test

import (
	"bytes"
	"math/rand"
	"os"
	"testing"

	"repro/internal/campaign"
	"repro/internal/journal"
)

// TestCanonicalizeOrderIndependence is the merge-determinism property at
// the journal layer: whatever order a campaign's verdicts arrive in —
// per-host interleavings, redeliveries, duplicate verdicts from stolen
// units — a canonicalized journal holds byte-identical content. This is
// what lets a distributed campaign's journal match a single-host run's.
func TestCanonicalizeOrderIndependence(t *testing.T) {
	const units = 200
	outcome := func(u int) journal.Outcome {
		return journal.Outcome{
			Mode:      uint8(u%5 + 1),
			Activated: u%2 == 0,
			Degraded:  u%7 == 0,
			Retried:   u%11 == 0,
		}
	}

	write := func(order []int) []byte {
		path := tempPath(t)
		j, err := journal.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Bind(0xabad1dea); err != nil {
			t.Fatal(err)
		}
		for _, u := range order {
			if err := j.Append(u, outcome(u)); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Canonicalize(); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	inOrder := make([]int, units)
	for i := range inOrder {
		inOrder[i] = i
	}
	want := write(inOrder)

	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		order := append([]int(nil), inOrder...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		// Splice in duplicate arrivals: a stolen or redelivered unit's
		// verdict lands a second time somewhere later in the stream.
		for i := 0; i < 20; i++ {
			order = append(order, order[rng.Intn(units)])
		}
		if got := write(order); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: canonicalized journal differs from in-order journal (%d vs %d bytes)",
				seed, len(got), len(want))
		}
	}
}

// TestCanonicalizeResumedSessionStability is the property the fabric's
// crash-recovery story rests on: a record set containing
// HostFault-quarantined units AND duplicate verdicts from resumed executor
// sessions (the same unit's verdict replayed from an unacked buffer after a
// reconnect, possibly many times, possibly interleaved across the whole
// stream) canonicalizes to the same bytes as a clean single pass. The
// journal's first-write-wins dedup plus Canonicalize's unit-order rewrite
// must erase every trace of the retransmissions.
func TestCanonicalizeResumedSessionStability(t *testing.T) {
	const units = 150
	outcome := func(u int) journal.Outcome {
		o := journal.Outcome{
			Mode:      uint8(u%4 + 1),
			Activated: u%3 == 0,
			Retried:   u%13 == 0,
		}
		// Every ninth unit was quarantined by the coordinator: host-side
		// failure, mode HostFault, no activation data.
		if u%9 == 0 {
			o = journal.Outcome{Mode: uint8(campaign.HostFault)}
		}
		return o
	}

	write := func(order []int) []byte {
		path := tempPath(t)
		j, err := journal.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Bind(0x5e551044); err != nil {
			t.Fatal(err)
		}
		for _, u := range order {
			if err := j.Append(u, outcome(u)); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Canonicalize(); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	clean := make([]int, units)
	for i := range clean {
		clean[i] = i
	}
	want := write(clean)

	for seed := int64(0); seed < 16; seed++ {
		rng := rand.New(rand.NewSource(seed))
		order := append([]int(nil), clean...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		// A resumed session retransmits a contiguous window of its unacked
		// verdicts — model 1-3 resumes, each replaying a random slice of
		// what was already sent, spliced at a random later point.
		for r := 0; r < 1+rng.Intn(3); r++ {
			at := rng.Intn(len(order))
			width := 1 + rng.Intn(30)
			lo := rng.Intn(units)
			var replay []int
			for _, u := range order[:at] {
				if u >= lo && u < lo+width {
					replay = append(replay, u)
				}
			}
			order = append(order, replay...)
		}
		if got := write(order); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: journal with resumed-session duplicates differs from clean pass (%d vs %d bytes)",
				seed, len(got), len(want))
		}
	}
}

// TestCanonicalizeReopens confirms a canonicalized journal is still a
// valid journal: it reopens, binds, and replays every unit.
func TestCanonicalizeReopens(t *testing.T) {
	path := tempPath(t)
	j, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Bind(0x5eed); err != nil {
		t.Fatal(err)
	}
	for _, u := range []int{9, 3, 7, 1} {
		if err := j.Append(u, journal.Outcome{Mode: uint8(u)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	// Appending after canonicalization must still work (the rewrite leaves
	// the write offset at the end of the record section).
	if err := j.Append(12, journal.Outcome{Mode: 2}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Bind(0x5eed); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 5 {
		t.Fatalf("reopened journal holds %d units, want 5", r.Len())
	}
	for _, u := range []int{1, 3, 7, 9, 12} {
		if _, ok := r.Done(u); !ok {
			t.Fatalf("unit %d lost by canonicalization", u)
		}
	}
}
