package journal_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chaos"
	"repro/internal/journal"
)

// flaky is a journal.File whose write and sync paths fail while the test's
// switches are on. The failures model ENOSPC-style refusals: nothing is
// written, but truncation still works (freeing space needs no space).
type flaky struct {
	journal.File
	fail     *bool
	failSync *bool
}

func (f *flaky) Write(b []byte) (int, error) {
	if *f.fail {
		return 0, errors.New("injected write failure (disk full)")
	}
	return f.File.Write(b)
}

func (f *flaky) WriteAt(b []byte, off int64) (int, error) {
	if *f.fail {
		return 0, errors.New("injected write failure (disk full)")
	}
	return f.File.WriteAt(b, off)
}

func (f *flaky) Sync() error {
	if *f.failSync {
		return errors.New("injected sync failure")
	}
	return f.File.Sync()
}

func flakyWrap(fail, failSync *bool) journal.Wrap {
	return func(raw *os.File) journal.File {
		return &flaky{File: raw, fail: fail, failSync: failSync}
	}
}

var degradeOutcomes = map[int]journal.Outcome{
	0: {Mode: 1, Activated: true},
	3: {Mode: 2},
	5: {Mode: 4, Degraded: true},
	9: {Mode: 3, Retried: true},
}

// referenceBytes builds an undisturbed, canonicalized journal over the same
// plan and outcomes — the byte-identity target every recovery path must hit.
func referenceBytes(t *testing.T, fp uint64) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "reference.wal")
	j, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Bind(fp); err != nil {
		t.Fatal(err)
	}
	for u, o := range degradeOutcomes {
		if err := j.Append(u, o); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestAppendFailureDegradesAndStaysResumable: the first failed append flips
// the journal into in-memory mode without surfacing an error, the persisted
// prefix survives truncated to whole records, and a later Open resumes from
// exactly that prefix.
func TestAppendFailureDegradesAndStaysResumable(t *testing.T) {
	path := tempPath(t)
	var fail, failSync bool
	j, err := journal.CreateWrapped(path, flakyWrap(&fail, &failSync))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Bind(0xabad1dea); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(0, degradeOutcomes[0]); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(3, degradeOutcomes[3]); err != nil {
		t.Fatal(err)
	}

	fail = true
	if err := j.Append(5, degradeOutcomes[5]); err != nil {
		t.Fatalf("append under disk failure surfaced %v; the journal must degrade, not fail the campaign", err)
	}
	if !j.Degraded() {
		t.Fatal("write failure did not flip the journal into degraded mode")
	}
	if err := j.Append(9, degradeOutcomes[9]); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 4 {
		t.Fatalf("degraded journal tracks %d outcomes in memory, want 4", j.Len())
	}
	if o, ok := j.Done(5); !ok || o != degradeOutcomes[5] {
		t.Fatalf("the outcome that hit the failure is not on record: (%+v, %v)", o, ok)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The disk holds exactly the two records that persisted before the
	// failure — a resumable prefix, not a torn mess.
	re, err := journal.Open(path)
	if err != nil {
		t.Fatalf("reopening the degraded journal's file: %v", err)
	}
	defer re.Close()
	if err := re.Bind(0xabad1dea); err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("resumed journal replays %d outcomes, want the 2 persisted before the failure", re.Len())
	}
	for _, u := range []int{0, 3} {
		if o, ok := re.Done(u); !ok || o != degradeOutcomes[u] {
			t.Fatalf("persisted unit %d replays as (%+v, %v)", u, o, ok)
		}
	}
}

// TestCanonicalizeRecoversTransientFailure: completion-time recovery. Disk
// pressure that lifted before the campaign finished leaves a journal
// byte-identical to an undisturbed run's.
func TestCanonicalizeRecoversTransientFailure(t *testing.T) {
	const fp = 0xabad1dea
	path := tempPath(t)
	var fail, failSync bool
	j, err := journal.CreateWrapped(path, flakyWrap(&fail, &failSync))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Bind(fp); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(0, degradeOutcomes[0]); err != nil {
		t.Fatal(err)
	}
	fail = true
	for _, u := range []int{3, 5, 9} {
		if err := j.Append(u, degradeOutcomes[u]); err != nil {
			t.Fatal(err)
		}
	}
	if !j.Degraded() {
		t.Fatal("journal not degraded")
	}

	fail = false // the pressure lifts before completion
	if err := j.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if j.Degraded() {
		t.Fatal("Canonicalize on a writable disk did not clear degraded mode")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := referenceBytes(t, fp); !bytes.Equal(got, want) {
		t.Fatalf("recovered journal differs from an undisturbed run's:\ngot  %d bytes %x\nwant %d bytes %x", len(got), got, len(want), want)
	}
}

// TestCanonicalizePersistentFailureStaysDegraded: if the disk never
// recovers, the recovery attempt must not wedge or corrupt — the journal
// stays degraded and the persisted prefix stays intact.
func TestCanonicalizePersistentFailureStaysDegraded(t *testing.T) {
	path := tempPath(t)
	var fail, failSync bool
	j, err := journal.CreateWrapped(path, flakyWrap(&fail, &failSync))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Bind(7); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(0, degradeOutcomes[0]); err != nil {
		t.Fatal(err)
	}
	fail = true
	if err := j.Append(3, degradeOutcomes[3]); err != nil {
		t.Fatal(err)
	}
	if err := j.Canonicalize(); err != nil {
		t.Fatalf("recovery attempt on a dead disk surfaced %v", err)
	}
	if !j.Degraded() {
		t.Fatal("Canonicalize claimed recovery on a disk that still fails writes")
	}
	j.Close()
	re, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("persisted prefix replays %d outcomes, want 1", re.Len())
	}
}

// TestBindHeaderFailureDegrades: a header that cannot be written runs the
// campaign journal-less instead of refusing to run it, and completion-time
// recovery can still produce a full journal.
func TestBindHeaderFailureDegrades(t *testing.T) {
	const fp = 0xabad1dea
	path := tempPath(t)
	var fail, failSync bool
	fail = true
	j, err := journal.CreateWrapped(path, flakyWrap(&fail, &failSync))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Bind(fp); err != nil {
		t.Fatalf("Bind surfaced the header write failure: %v", err)
	}
	if !j.Degraded() {
		t.Fatal("failed header write did not degrade the journal")
	}
	for u, o := range degradeOutcomes {
		if err := j.Append(u, o); err != nil {
			t.Fatal(err)
		}
	}
	fail = false
	if err := j.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if j.Degraded() {
		t.Fatal("recovery did not clear degraded mode")
	}
	j.Close()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := referenceBytes(t, fp); !bytes.Equal(got, want) {
		t.Fatal("header-failure recovery did not reproduce the undisturbed journal")
	}
}

// TestSyncFailureDegrades: fsync reporting failure means nothing later can
// be trusted to persist — degrade, don't guess.
func TestSyncFailureDegrades(t *testing.T) {
	path := tempPath(t)
	var fail, failSync bool
	j, err := journal.CreateWrapped(path, flakyWrap(&fail, &failSync))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Bind(1); err != nil {
		t.Fatal(err)
	}
	failSync = true
	if err := j.Sync(); err != nil {
		t.Fatalf("Sync surfaced %v; a sync failure degrades silently", err)
	}
	if !j.Degraded() {
		t.Fatal("sync failure did not degrade the journal")
	}
	j.Close()
}

// TestJournalUnderChaosENOSPC wires the real chaos wrapper through the
// journal's Wrap hook — the integration the CLIs ship — and proves the
// degradation contract holds against its injected disk-full failures.
func TestJournalUnderChaosENOSPC(t *testing.T) {
	path := tempPath(t)
	c := chaos.New(chaos.Config{Seed: 4, DiskENOSPC: 1.0}, nil)
	j, err := journal.CreateWrapped(path, func(f *os.File) journal.File { return c.WrapFile(f) })
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Bind(2); err != nil {
		t.Fatal(err)
	}
	if !j.Degraded() {
		t.Fatal("chaos ENOSPC at probability 1 did not degrade the journal at Bind")
	}
	if err := j.Append(0, degradeOutcomes[0]); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Fatal("degraded journal lost the in-memory outcome")
	}
	j.Close()
}

// TestSideLogDegradeContract: the sidecar's first write failure is reported
// (crash recovery just became partial — the coordinator should say so),
// every later append is a silent no-op, and the persisted prefix replays.
func TestSideLogDegradeContract(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.wal.fabric")
	var fail, failSync bool
	s, err := journal.CreateSideWrapped(path, flakyWrap(&fail, &failSync))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Bind(3); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, []byte("assign 0..8 host-a")); err != nil {
		t.Fatal(err)
	}
	fail = true
	if err := s.Append(2, []byte("steal 4..8 host-b")); err == nil {
		t.Fatal("first sidecar write failure was swallowed; the coordinator cannot warn")
	}
	if !s.Degraded() {
		t.Fatal("write failure did not degrade the sidecar")
	}
	if err := s.Append(3, []byte("session token refresh")); err != nil {
		t.Fatalf("append on a degraded sidecar surfaced %v; it must be a silent no-op", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync on a degraded sidecar surfaced %v", err)
	}
	s.Close()

	re, err := journal.OpenSide(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Bind(3); err != nil {
		t.Fatal(err)
	}
	var got []journal.SideRecord
	re.Replay(func(r journal.SideRecord) error {
		got = append(got, r)
		return nil
	})
	if len(got) != 1 || got[0].Kind != 1 || string(got[0].Payload) != "assign 0..8 host-a" {
		t.Fatalf("degraded sidecar replays %+v, want the one record persisted before the failure", got)
	}
}
