package campaign

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/injector"
	"repro/internal/locator"
	"repro/internal/programs"
	"repro/internal/workload"
)

// This file implements the study the paper's conclusion calls for:
// "a promising approach seems to be devising ways to perform an independent
// evaluation of the accuracy of the fault types and the fault triggers."
// It holds the fault types (What/Where) fixed and varies only the trigger's
// When parameter, so differences in failure modes are attributable to the
// trigger alone.

// TriggerPolicy is one When setting.
type TriggerPolicy struct {
	Name string
	Once bool
	Skip int
}

// DefaultTriggerPolicies returns the three policies compared by the study:
// the §6 always-on trigger, a first-execution-only trigger, and a
// late-activation trigger that lets the program run warm before the error
// appears (closer to a latent software fault exposed by a rare state).
func DefaultTriggerPolicies() []TriggerPolicy {
	return []TriggerPolicy{
		{Name: "every execution (paper §6)", Once: false, Skip: 0},
		{Name: "first execution only", Once: true, Skip: 0},
		{Name: "single late activation (skip 24)", Once: true, Skip: 24},
	}
}

// TriggerStudyResult aggregates failure modes per policy.
type TriggerStudyResult struct {
	Program  string
	Policies []TriggerPolicy
	Dists    []Dist // parallel to Policies
	Faults   int
	Cases    int
}

// RunTriggerStudy injects the same fault set (assignment plus checking,
// nLocs locations each) under every policy and collects the failure-mode
// distributions, fanning runs over runtime.GOMAXPROCS(0) workers; see
// RunTriggerStudyWorkers.
func RunTriggerStudy(programName string, nLocs, nCases int, seed int64) (*TriggerStudyResult, error) {
	return RunTriggerStudyWorkers(programName, nLocs, nCases, seed, 0)
}

// RunTriggerStudyWorkers is RunTriggerStudy with an explicit worker count
// (0 selects runtime.GOMAXPROCS(0), 1 the serial path). Planning — fault
// selection and the per-policy trigger rewrites — stays serial; the
// (policy, fault, case) runs execute through the shared campaign executor
// with outcomes merged in planning order, so the distributions are
// identical for any worker count.
func RunTriggerStudyWorkers(programName string, nLocs, nCases int, seed int64, workers int) (*TriggerStudyResult, error) {
	p, ok := programs.ByName(programName)
	if !ok {
		return nil, fmt.Errorf("campaign: unknown program %q", programName)
	}
	c, err := p.Compile()
	if err != nil {
		return nil, err
	}
	cases, err := workload.Cached(p.Kind, nCases, seed)
	if err != nil {
		return nil, err
	}
	budgets, err := CalibrateCyclesWorkers(c, cases, workers)
	if err != nil {
		return nil, err
	}
	pa, err := locator.PlanAssignment(c, programName, nLocs, seed)
	if err != nil {
		return nil, err
	}
	pc, err := locator.PlanChecking(c, programName, nLocs, seed)
	if err != nil {
		return nil, err
	}
	faults := append(append([]fault.Fault(nil), pa.Faults...), pc.Faults...)

	res := &TriggerStudyResult{
		Program:  programName,
		Policies: DefaultTriggerPolicies(),
		Faults:   len(faults),
		Cases:    len(cases),
	}
	// One watch set serves every policy: the policies rewrite only the
	// When parameters, never the trigger addresses. The late-activation
	// policy benefits the most from the golden record — faults whose
	// location executes fewer than Skip+1 times are recognised as dormant
	// without running anything.
	gold := newGoldenSource(faults)
	var units []runUnit
	for pi, pol := range res.Policies {
		// Each policy gets its own fault copies so the trigger rewrite
		// does not leak between policies; units reference the copies.
		polFaults := make([]fault.Fault, len(faults))
		copy(polFaults, faults)
		for fi := range polFaults {
			f := &polFaults[fi]
			f.Trigger.Once = pol.Once
			f.Trigger.Skip = pol.Skip
			for ci := range cases {
				units = append(units, runUnit{
					program: fmt.Sprintf("trigger study %s", pol.Name),
					c:       c, f: f,
					cs: &cases[ci], caseIx: ci,
					budget: budgets[ci], mode: injector.ModeHardware,
					entry: pi, gold: gold,
				})
			}
		}
	}
	outcomes, err := executeUnits(workers, units)
	if err != nil {
		return nil, err
	}
	dists := make([]Dist, len(res.Policies))
	for i := range dists {
		dists[i] = Dist{Counts: make(map[FailureMode]int)}
	}
	for i := range units {
		d := &dists[units[i].entry]
		d.Runs++
		d.Counts[outcomes[i].mode]++
		if outcomes[i].activated {
			d.Activated++
		}
	}
	res.Dists = dists
	return res, nil
}
