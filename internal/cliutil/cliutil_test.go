package cliutil

import (
	"flag"
	"io"
	"strings"
	"testing"
	"time"
)

func TestValidateWorkers(t *testing.T) {
	for _, n := range []int{1, 2, 64} {
		if err := ValidateWorkers(n); err != nil {
			t.Errorf("ValidateWorkers(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{0, -1, -8} {
		if err := ValidateWorkers(n); err == nil {
			t.Errorf("ValidateWorkers(%d) accepted", n)
		} else if !strings.Contains(err.Error(), "-workers") {
			t.Errorf("ValidateWorkers(%d) error %q does not name the flag", n, err)
		}
	}
}

func TestValidateUnitTimeout(t *testing.T) {
	parse := func(args ...string) (*flag.FlagSet, time.Duration) {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		d := fs.Duration("unit-timeout", 0, "")
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return fs, *d
	}

	// Unset: 0 means "no deadline" and must pass.
	fs, d := parse()
	if err := ValidateUnitTimeout(fs, "unit-timeout", d); err != nil {
		t.Errorf("unset default rejected: %v", err)
	}
	// Explicit positive: fine.
	fs, d = parse("-unit-timeout", "30s")
	if err := ValidateUnitTimeout(fs, "unit-timeout", d); err != nil {
		t.Errorf("explicit 30s rejected: %v", err)
	}
	// Explicit zero and negative: rejected with the flag named.
	for _, v := range []string{"0", "-5s"} {
		fs, d = parse("-unit-timeout", v)
		if err := ValidateUnitTimeout(fs, "unit-timeout", d); err == nil {
			t.Errorf("explicit %s accepted", v)
		} else if !strings.Contains(err.Error(), "unit-timeout") {
			t.Errorf("error %q does not name the flag", err)
		}
	}
}

func TestValidateResume(t *testing.T) {
	if err := ValidateResume(false, ""); err != nil {
		t.Errorf("no resume, no journal: %v", err)
	}
	if err := ValidateResume(true, "run.wal"); err != nil {
		t.Errorf("resume with journal: %v", err)
	}
	if err := ValidateResume(false, "run.wal"); err != nil {
		t.Errorf("fresh journal without resume: %v", err)
	}
	err := ValidateResume(true, "")
	if err == nil {
		t.Fatal("resume without journal accepted")
	}
	if !strings.Contains(err.Error(), "-journal") {
		t.Errorf("error %q does not name the missing flag", err)
	}
}

func TestParseIsolation(t *testing.T) {
	if proc, err := ParseIsolation("inproc"); err != nil || proc {
		t.Errorf("inproc -> (%v, %v)", proc, err)
	}
	if proc, err := ParseIsolation("proc"); err != nil || !proc {
		t.Errorf("proc -> (%v, %v)", proc, err)
	}
	for _, s := range []string{"", "process", "PROC", "subprocess"} {
		if _, err := ParseIsolation(s); err == nil {
			t.Errorf("ParseIsolation(%q) accepted", s)
		}
	}
}
