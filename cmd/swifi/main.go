// Command swifi regenerates the paper's tables and figures.
//
// Usage:
//
//	swifi [-scale 0.1] [-seed 2000] [-mode hw|trap] [-workers N] <experiment>...
//	swifi -list
//	swifi verify <program>
//
// Experiments are named after the paper: table1..table4, fig2, fig7..fig10,
// summary5, fielddist, metrics, or "all". -scale 1.0 reproduces the paper's
// full run counts (108,600 injections for the §6 campaign).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/injector"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "swifi:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("swifi", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.1, "fraction of the paper's run counts (1.0 = full scale)")
	seed := fs.Int64("seed", 2000, "random seed for location choice and input generation")
	mode := fs.String("mode", "hw", "injector trigger mode: hw (breakpoint registers) or trap")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "parallel campaign workers (1 = serial; results are identical for any count)")
	list := fs.Bool("list", false, "list experiment identifiers and exit")
	verifyCases := fs.Int("verify-cases", 50, "input count for 'verify <program>'")
	noFFwd := fs.Bool("no-ffwd", false, "disable golden-run checkpointing (full replay per injection)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProf()
	if *list {
		fmt.Println(strings.Join(core.ExperimentIDs(), "\n"))
		return nil
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("no experiment given; try -list, 'all', or 'verify <program>'")
	}

	e := core.New(*scale)
	e.Seed = *seed
	e.Workers = *workers
	e.NoFastForward = *noFFwd
	switch *mode {
	case "hw":
		e.Mode = injector.ModeHardware
	case "trap":
		e.Mode = injector.ModeTrap
	default:
		return fmt.Errorf("unknown mode %q (hw or trap)", *mode)
	}

	if rest[0] == "verify" {
		if len(rest) != 2 {
			return fmt.Errorf("usage: swifi verify <program>")
		}
		out, err := e.VerifyRealFault(rest[1], *verifyCases)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}

	ids := rest
	if len(ids) == 1 && ids[0] == "all" {
		ids = core.ExperimentIDs()
	}
	for _, id := range ids {
		start := time.Now()
		out, err := e.Experiment(id)
		if err != nil {
			return err
		}
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "[%s took %s]\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// startProfiles arms the pprof outputs requested on the command line and
// returns the function that finalises them. The heap profile is written at
// stop time, after a GC, so it reflects live retention (e.g. the golden
// store's checkpoint chains) rather than transient allocation.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "swifi:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "swifi:", err)
			}
		}
	}, nil
}
