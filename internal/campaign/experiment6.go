package campaign

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"repro/internal/chaos"
	"repro/internal/fault"
	"repro/internal/golden"
	"repro/internal/injector"
	"repro/internal/journal"
	"repro/internal/locator"
	"repro/internal/metrics"
	"repro/internal/programs"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// This file implements the paper's second experiment (§6): emulation of
// whole classes of software faults. Fault locations are enumerated from the
// compiler's debug information, a random subset is chosen per program, each
// chosen location is expanded into every applicable Table 3 error type, and
// each resulting fault is injected once per input data set with the target
// rebooted in between.

// PaperChosenAssign reproduces the "Chosen locations" column of Table 4 for
// assignment faults.
var PaperChosenAssign = map[string]int{
	"C.team1": 8, "C.team2": 5, "C.team8": 8, "C.team9": 9,
	"C.team10": 9, "JB.team6": 5, "JB.team11": 5, "SOR": 12,
}

// PaperChosenCheck reproduces the "Chosen locations" column of Table 4 for
// checking faults.
var PaperChosenCheck = map[string]int{
	"C.team1": 8, "C.team2": 6, "C.team8": 9, "C.team9": 9,
	"C.team10": 8, "JB.team6": 5, "JB.team11": 5, "SOR": 12,
}

// PaperCasesPerFault is the paper's test-case size: each fault is injected
// once per input data set, 300 data sets per program kind.
const PaperCasesPerFault = 300

// Config parameterises a class campaign.
type Config struct {
	// Programs lists target program names; empty means the Table 4 set.
	Programs []string
	// Classes lists the fault classes to inject; empty means both.
	Classes []fault.Class
	// CasesPerFault scales the experiment; 0 means PaperCasesPerFault.
	CasesPerFault int
	// ChosenAssign/ChosenCheck give the number of locations per program;
	// missing entries fall back to the paper's Table 4 columns.
	ChosenAssign map[string]int
	ChosenCheck  map[string]int
	Seed         int64
	// Mode selects the trigger mechanism; 0 means hardware breakpoints
	// (every §6 fault is single-location, so the two IABRs suffice).
	Mode injector.Mode
	// MetricGuided selects fault locations weighted by the enclosing
	// function's complexity score instead of uniformly — the §6.1 policy
	// for when no field data exists.
	MetricGuided bool
	// Workers sets the executor fan-out: how many workers run injections
	// concurrently, each with its own pooled machines. 0 selects
	// runtime.GOMAXPROCS(0); 1 is the legacy serial path. All randomness
	// lives in planning, which is always serial, so the Result is
	// bit-identical across worker counts for the same Seed.
	Workers int
	// NoFastForward disables golden-run checkpointing: every injection
	// reboots and replays its full fault-free prefix, as the pre-checkpoint
	// executor did. The Result is identical either way (the fast path is an
	// execution shortcut, not a semantic change); the knob exists for A/B
	// benchmarking and as the reference in equivalence tests.
	NoFastForward bool
	// InterpOnly forces the per-instruction interpreter on every executor
	// machine, disabling the block-compiled engine. The Result is
	// bit-identical either way — the block engine's equivalence contract —
	// so the knob exists for A/B benchmarking and as the reference side in
	// equivalence tests.
	InterpOnly bool
	// Ctx, when non-nil, allows graceful interruption: once it is
	// cancelled no new injection starts, in-flight injections drain, and
	// Run returns an *InterruptedError carrying the partial Result.
	Ctx context.Context
	// Journal, when non-nil, makes the campaign crash-safe: Run binds the
	// journal to the plan's fingerprint after planning, replays units the
	// journal already holds instead of executing them, and appends every
	// completed unit as it finishes. A journal written by an interrupted or
	// killed run resumes under any worker count with a bit-identical Result.
	Journal *journal.Journal
	// UnitTimeout bounds each injection's host wall-clock time; a unit (and
	// its one retry) exceeding it is abandoned and quarantined as a
	// HostFault. 0 disables the watchdog — the default, since the target's
	// own cycle watchdog already classifies in-target hangs.
	UnitTimeout time.Duration
	// Isolation selects where units execute: IsolationInProc (the default)
	// on goroutines in this process, IsolationProc in supervised worker
	// subprocesses (see internal/worker). The Result is bit-identical in
	// both modes; proc trades IPC overhead for surviving hard host
	// failures — an OOM-kill or wedge costs one worker, not the campaign.
	Isolation Isolation
	// Proc tunes the worker pool under IsolationProc; nil picks defaults
	// (re-exec the current binary with -worker-mode, 500ms heartbeats, 10s
	// silence timeout, one redelivery before quarantine).
	Proc *ProcOptions
	// Fabric, when non-nil, makes this process the coordinator of a
	// distributed campaign: units are sharded over executor hosts that
	// join via JoinFabric instead of executing locally, with work stealing
	// and host-loss redelivery (see internal/fabric). The Result — and,
	// with a Journal, the journal bytes after canonicalization — is
	// bit-identical to a single-host run. Isolation is then a per-executor
	// choice (JoinOptions.Isolation), not the coordinator's.
	Fabric *FabricOptions
	// Telemetry, when non-nil, observes the campaign: unit counters and
	// latency histograms on its registry, lifecycle events on its tracer,
	// and a live progress line on its surface while units execute. Purely
	// passive — the Result is bit-identical with or without it.
	Telemetry *telemetry.Telemetry
	// StorageChaos, when non-nil, is the deterministic storage/IPC fault
	// injector (swifi -chaos with disk.* / pipe.* keys): the journal and its
	// fabric sidecar are opened through its WrapFile hook by the CLI, golden
	// checkpoints are poisoned through PoisonCheckpoint, and proc-isolation
	// pipes are mangled through Proc.WrapPipes. Like the network plane, it
	// is a harness-abuse knob: the Result — and the canonicalized journal
	// bytes — must stay bit-identical to a clean run.
	StorageChaos *chaos.Chaos
}

func (c *Config) fill() {
	if len(c.Programs) == 0 {
		for _, p := range programs.Table4Programs() {
			c.Programs = append(c.Programs, p.Name)
		}
	}
	if len(c.Classes) == 0 {
		c.Classes = []fault.Class{fault.ClassAssignment, fault.ClassChecking}
	}
	if c.CasesPerFault == 0 {
		c.CasesPerFault = PaperCasesPerFault
	}
	if c.Mode == 0 {
		c.Mode = injector.ModeHardware
	}
	if c.Seed == 0 {
		c.Seed = 2000 // the year of the paper
	}
}

func (c *Config) chosen(class fault.Class, program string) int {
	var m, def map[string]int
	switch class {
	case fault.ClassAssignment, fault.ClassHardware:
		// Hardware-fault plans reuse the assignment location budgets.
		m, def = c.ChosenAssign, PaperChosenAssign
	default:
		m, def = c.ChosenCheck, PaperChosenCheck
	}
	if n, ok := m[program]; ok {
		return n
	}
	if n, ok := def[program]; ok {
		return n
	}
	return 5
}

// Entry aggregates the outcomes of every injection of one (program, class,
// error type) combination.
type Entry struct {
	Program string
	Class   fault.Class
	ErrType fault.ErrType
	Runs    int
	// Counts is indexed by FailureMode.
	Counts map[FailureMode]int
	// Activated counts runs in which the fault's corruption actually
	// applied at least once (the faulty code was executed).
	Activated int
}

// PlanInfo is one row of Table 4.
type PlanInfo struct {
	Program  string
	Class    fault.Class
	Possible int
	Chosen   int
	Faults   int // chosen locations × applicable error types
	Injected int // Faults × cases (the paper's "Injected faults" column)
}

// ExecStats counts the resilience events of a campaign's execution. All
// three are zero on a healthy run; they are diagnostics about the host, not
// measurements of the target, and none of them perturbs the failure-mode
// distributions (a degraded or retried unit still reports its true outcome,
// and HostFault units appear only in Entry.Counts[HostFault]).
type ExecStats struct {
	// Degraded counts units that fell back to straight execution because a
	// golden checkpoint failed its integrity check or could not be restored.
	Degraded int
	// Retried counts units whose first attempt panicked host-side and whose
	// retry on a fresh machine succeeded.
	Retried int
	// HostFaults counts quarantined units: two host panics, or a wall-clock
	// timeout.
	HostFaults int
	// Replayed counts units whose outcome was taken from the journal instead
	// of executed — non-zero exactly on resumed runs. Unlike the three
	// fields above it is provenance, not a resilience event: it says how the
	// outcomes were obtained this run, never changes them, and is not
	// persisted (a journal replayed twice reports it both times).
	Replayed int
}

// Result is the outcome of a class campaign.
type Result struct {
	Entries []Entry
	Plans   []PlanInfo
	Runs    int
	// Exec reports the resilience events of this execution. It is the one
	// Result field that may differ between a run and its resumed replay in
	// spirit — but not in value: the journal persists the degraded/retried
	// flags per unit, so a resume reconstructs the same totals.
	Exec ExecStats
	// Hosts is the per-executor fleet breakdown of a fabric campaign, in
	// join order; empty on single-host runs. Like Exec.Replayed it is
	// provenance — which hosts obtained the outcomes — never part of the
	// outcomes themselves, so the bit-identity contracts compare Entries
	// and Exec, not this.
	Hosts []telemetry.HostStats
}

// InterruptedError is returned by Run when its context is cancelled before
// every unit has executed. It carries the partial Result aggregated from the
// units that did finish (their journal records, if any, are already
// flushed), so callers can print partial tallies with a resume hint.
type InterruptedError struct {
	Done    int     // units executed (or replayed) before the interrupt
	Total   int     // units planned
	Partial *Result // aggregation of the Done units only
	Cause   error   // the context error (context.Canceled or DeadlineExceeded)
}

func (e *InterruptedError) Error() string {
	return fmt.Sprintf("campaign interrupted after %d/%d injections: %v", e.Done, e.Total, e.Cause)
}

func (e *InterruptedError) Unwrap() error { return e.Cause }

// planFingerprint hashes everything that determines a campaign plan's units
// and their outcomes: the seed and, per unit in planning order, the program,
// fault identity (ID, error type, trigger addresses, trigger policy), case
// index, watchdog budget, injector mode and entry slot. Deliberately
// excluded: Workers, NoFastForward, Ctx, UnitTimeout, Isolation, Proc,
// Fabric, Telemetry and StorageChaos — none of them changes any unit's outcome, so a journal written
// under one executor configuration resumes under any other (a proc campaign
// resumes in-process, a distributed campaign resumes single-host, a chaos
// run resumes clean, and vice versa).
func planFingerprint(cfg *Config, units []runUnit) uint64 {
	h := fnv.New64a()
	var b [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	ws := func(s string) {
		w64(uint64(len(s)))
		h.Write([]byte(s))
	}
	w64(uint64(cfg.Seed))
	w64(uint64(len(units)))
	for i := range units {
		u := &units[i]
		ws(u.program)
		ws(u.f.ID)
		ws(string(u.f.ErrType))
		for _, a := range u.f.TriggerAddrs() {
			w64(uint64(a))
		}
		if u.f.Trigger.Once {
			w64(1)
		} else {
			w64(0)
		}
		w64(uint64(u.f.Trigger.Skip))
		w64(uint64(u.caseIx))
		w64(u.budget)
		w64(uint64(u.mode))
		w64(uint64(u.entry))
	}
	return h.Sum64()
}

// plannedCampaign is the output of the serial planning phase: the Result
// shell with its Plans rows, the entry slots units aggregate into, the unit
// list in planning order, and the plan fingerprint over all of it. Planning
// is fully deterministic for a Config, which is what lets a worker
// subprocess rebuild the identical plan from the serialized Config alone.
type plannedCampaign struct {
	res       *Result
	entryList []*Entry
	units     []runUnit
	fp        uint64
}

// planCampaign runs the serial planning phase: location choice, fault
// expansion, input generation, watchdog calibration. It fills cfg's
// defaults in place.
func planCampaign(cfg *Config) (*plannedCampaign, error) {
	cfg.fill()
	res := &Result{}
	entryIdx := make(map[string]int)
	var entryList []*Entry
	var units []runUnit

	// All programs of the same kind run the same test case (§6.2). The
	// case sets come from the process-wide workload cache, so repeated
	// campaigns at the same scale and seed share inputs, goldens and (via
	// the calibration cache) watchdog budgets.
	for _, name := range cfg.Programs {
		p, ok := programs.ByName(name)
		if !ok {
			return nil, fmt.Errorf("campaign: unknown program %q", name)
		}
		c, err := p.Compile()
		if err != nil {
			return nil, err
		}
		cases, err := workload.Cached(p.Kind, cfg.CasesPerFault, cfg.Seed)
		if err != nil {
			return nil, err
		}
		budgets, err := CalibrateCyclesWorkers(c, cases, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("campaign: calibrate %s: %w", name, err)
		}

		var rep *metrics.Report
		if cfg.MetricGuided {
			rep = metrics.Analyze(name, c.AST)
		}
		// Plan every class first: the golden watch set must cover the
		// trigger addresses of all of the program's faults, so that one
		// golden run per case serves every class.
		plans := make([]*locator.Plan, len(cfg.Classes))
		for i, class := range cfg.Classes {
			var plan *locator.Plan
			n := cfg.chosen(class, name)
			switch class {
			case fault.ClassAssignment:
				if cfg.MetricGuided {
					w := metrics.LocationWeights(rep, metrics.AssignFuncs(c))
					plan, err = locator.PlanAssignmentChosen(c, name, metrics.ChooseWeighted(w, n, cfg.Seed), cfg.Seed)
				} else {
					plan, err = locator.PlanAssignment(c, name, n, cfg.Seed)
				}
			case fault.ClassChecking:
				if cfg.MetricGuided {
					w := metrics.LocationWeights(rep, metrics.CheckFuncs(c))
					plan, err = locator.PlanCheckingChosen(c, name, metrics.ChooseWeighted(w, n, cfg.Seed), cfg.Seed)
				} else {
					plan, err = locator.PlanChecking(c, name, n, cfg.Seed)
				}
			case fault.ClassHardware:
				plan, err = locator.PlanHardware(c, name, n, cfg.Seed)
			default:
				err = fmt.Errorf("campaign: class %v has no §6 plan", class)
			}
			if err != nil {
				return nil, err
			}
			plans[i] = plan
		}

		var gold *goldenSource
		if !cfg.NoFastForward {
			faultSets := make([][]fault.Fault, len(plans))
			for i, plan := range plans {
				faultSets[i] = plan.Faults
			}
			gold = newGoldenSource(faultSets...)
		}

		for pi, class := range cfg.Classes {
			plan := plans[pi]
			res.Plans = append(res.Plans, PlanInfo{
				Program: name, Class: class,
				Possible: plan.Possible, Chosen: len(plan.Chosen),
				Faults:   len(plan.Faults),
				Injected: len(plan.Faults) * len(cases),
			})
			for fi := range plan.Faults {
				f := &plan.Faults[fi]
				key := name + "|" + class.String() + "|" + string(f.ErrType)
				ei, ok := entryIdx[key]
				if !ok {
					ei = len(entryList)
					entryIdx[key] = ei
					entryList = append(entryList, &Entry{
						Program: name, Class: class, ErrType: f.ErrType,
						Counts: make(map[FailureMode]int),
					})
				}
				for ci := range cases {
					units = append(units, runUnit{
						program: name, c: c, f: f,
						cs: &cases[ci], caseIx: ci,
						budget: budgets[ci], mode: cfg.Mode,
						entry: ei, gold: gold,
					})
				}
			}
		}
	}

	return &plannedCampaign{
		res:       res,
		entryList: entryList,
		units:     units,
		fp:        planFingerprint(cfg, units),
	}, nil
}

// Run executes the campaign. It is deterministic for a given Config:
// planning (location choice, fault expansion, input generation) is serial
// and seeded, execution fans out over cfg.Workers — goroutines or worker
// subprocesses, per cfg.Isolation — with per-unit result slots merged in
// planning order, so any worker count in either isolation mode yields the
// same Result.
func Run(cfg Config) (*Result, error) {
	pc, err := planCampaign(&cfg)
	if err != nil {
		return nil, err
	}
	res, entryList, units := pc.res, pc.entryList, pc.units

	// Planning is complete: the plan fingerprint is now defined, so a
	// journal can be bound (fresh) or checked (resume) before any
	// execution happens.
	if cfg.Journal != nil {
		if err := cfg.Journal.Bind(pc.fp); err != nil {
			return nil, err
		}
	}

	// Observability: register the campaign instruments, point the journal
	// and the shared golden store at the same registry, and bracket the
	// execution phase with the live progress line. All of it degrades to
	// nil instruments (single pointer checks) when cfg.Telemetry is unset.
	met := newCampMetrics(cfg.Telemetry.Registry())
	tracer := cfg.Telemetry.Tracer()
	if met != nil {
		met.unitsTotal.Add(int64(len(units)))
	}
	if cfg.Journal != nil && met != nil {
		cfg.Journal.Metrics = newJournalMetrics(cfg.Telemetry.Registry())
	}
	if met != nil && !cfg.NoFastForward {
		golden.Shared.SetMetrics(newGoldenMetrics(cfg.Telemetry.Registry()))
	}
	// Storage chaos: arm (or, for a clean campaign, disarm — the store is
	// process-wide) the checkpoint poisoner. Poisoned checkpoints fail their
	// integrity check on restore and degrade to straight execution, so the
	// Result is unchanged; only Exec.Degraded and the chaos counters move.
	golden.Shared.SetPoison(poisonHook(cfg.StorageChaos))
	if tracer != nil {
		for i := range units {
			tracer.Emit(traceUnit(telemetry.KindPlanned, i, &units[i], 0))
		}
	}
	progress := cfg.Telemetry.ProgressSurface()
	if met != nil {
		progress.Start(met.snapshot)
		defer progress.Stop()
	}

	// Execution: the only parallel section. Outcomes land in per-unit
	// slots and are folded into the entries in planning order.
	eo := execOpts{
		ctx:         cfg.Ctx,
		workers:     cfg.Workers,
		journal:     cfg.Journal,
		unitTimeout: cfg.UnitTimeout,
		interpOnly:  cfg.InterpOnly,
		met:         met,
		tracer:      tracer,
	}
	var outcomes []unitOutcome
	switch {
	case cfg.Fabric != nil:
		outcomes, res.Hosts, err = executeUnitsFabric(&cfg, eo, units, pc.fp)
	case cfg.Isolation == IsolationProc:
		outcomes, err = executeUnitsProc(&cfg, eo, units, pc.fp)
	default:
		outcomes, err = executeUnitsOpts(eo, units)
	}
	if err != nil {
		if (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) && outcomes != nil {
			done := foldOutcomes(res, entryList, units, outcomes)
			return nil, &InterruptedError{Done: done, Total: len(units), Partial: res, Cause: err}
		}
		return nil, err
	}
	// A completed campaign's journal is canonicalized — rewritten in unit
	// order — whatever executor produced it, so the bytes on disk are a pure
	// function of the plan and its outcomes: independent of worker count,
	// isolation mode, fleet size, interleaving, and any chaos absorbed along
	// the way. On a journal degraded by storage faults this is also the
	// recovery attempt (every outcome is in memory; transient pressure that
	// lifted leaves a full journal after all).
	if cfg.Journal != nil {
		if cerr := cfg.Journal.Canonicalize(); cerr != nil {
			return nil, cerr
		}
	}
	foldOutcomes(res, entryList, units, outcomes)
	return res, nil
}

// poisonHook adapts a storage-chaos injector into the golden store's poison
// hook; nil (hook disarmed) unless checkpoint poisoning is configured.
func poisonHook(c *chaos.Chaos) func() bool {
	if cc := c.Config(); cc.DiskPoison <= 0 {
		return nil
	}
	return c.PoisonCheckpoint
}

// foldOutcomes aggregates per-unit outcome slots into the entries, in
// planning order, skipping the zero (not-executed) slots an interrupted run
// leaves behind. It finalises res.Entries and returns the number of slots
// folded.
func foldOutcomes(res *Result, entryList []*Entry, units []runUnit, outcomes []unitOutcome) int {
	done := 0
	for i := range units {
		o := outcomes[i]
		if o.mode == 0 {
			continue
		}
		done++
		e := entryList[units[i].entry]
		e.Runs++
		e.Counts[o.mode]++
		if o.activated {
			e.Activated++
		}
		res.Runs++
		if o.degraded {
			res.Exec.Degraded++
		}
		if o.retried {
			res.Exec.Retried++
		}
		if o.mode == HostFault {
			res.Exec.HostFaults++
		}
		if o.replayed {
			res.Exec.Replayed++
		}
	}
	for _, e := range entryList {
		if e.Runs > 0 || done == len(units) {
			res.Entries = append(res.Entries, *e)
		}
	}
	sort.Slice(res.Entries, func(i, j int) bool {
		a, b := res.Entries[i], res.Entries[j]
		if a.Program != b.Program {
			return a.Program < b.Program
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.ErrType < b.ErrType
	})
	return done
}

// Dist is a failure-mode distribution.
type Dist struct {
	Runs      int
	Counts    map[FailureMode]int
	Activated int
}

// Pct returns the percentage of runs with the given mode.
func (d Dist) Pct(m FailureMode) float64 {
	if d.Runs == 0 {
		return 0
	}
	return 100 * float64(d.Counts[m]) / float64(d.Runs)
}

func (r *Result) accumulate(filter func(*Entry) (string, bool)) map[string]Dist {
	out := make(map[string]Dist)
	for i := range r.Entries {
		e := &r.Entries[i]
		key, ok := filter(e)
		if !ok {
			continue
		}
		d, exists := out[key]
		if !exists {
			d = Dist{Counts: make(map[FailureMode]int)}
		}
		d.Runs += e.Runs
		d.Activated += e.Activated
		for m, n := range e.Counts {
			d.Counts[m] += n
		}
		out[key] = d
	}
	return out
}

// ByProgram aggregates failure modes per program for one fault class
// (Figures 7 and 8).
func (r *Result) ByProgram(class fault.Class) map[string]Dist {
	return r.accumulate(func(e *Entry) (string, bool) {
		return e.Program, e.Class == class
	})
}

// ByErrType aggregates failure modes per error type for one fault class
// (Figures 9 and 10).
func (r *Result) ByErrType(class fault.Class) map[string]Dist {
	return r.accumulate(func(e *Entry) (string, bool) {
		return string(e.ErrType), e.Class == class
	})
}

// Total aggregates everything for one class.
func (r *Result) Total(class fault.Class) Dist {
	agg := r.accumulate(func(e *Entry) (string, bool) { return "all", e.Class == class })
	return agg["all"]
}
