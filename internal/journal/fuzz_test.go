package journal_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/journal"
)

// journalBytes builds a real journal file and returns its bytes — the seed
// corpus must be genuine journals, not hand-rolled approximations, so the
// fuzzer starts from inputs that reach the record loop rather than dying at
// the magic check.
func journalBytes(t interface{ Fatal(...any) }, fp uint64, outcomes map[int]journal.Outcome, canonical bool) []byte {
	dir, err := os.MkdirTemp("", "fuzzseed")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "seed.wal")
	j, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Bind(fp); err != nil {
		t.Fatal(err)
	}
	for u, o := range outcomes {
		if err := j.Append(u, o); err != nil {
			t.Fatal(err)
		}
	}
	if canonical {
		if err := j.Canonicalize(); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// FuzzJournalOpen throws arbitrary bytes at the journal loader. The
// invariant under test is the one resume depends on: Open either fails
// cleanly or yields a journal whose replayed records all came from intact
// CRC-verified bytes — no panic, no hang, no phantom outcomes, on any
// input including torn, bit-flipped and extended real journals.
func FuzzJournalOpen(f *testing.F) {
	real := journalBytes(f, 0xfeedface, map[int]journal.Outcome{
		0: {Mode: 1, Activated: true},
		2: {Mode: 3},
		5: {Mode: 4, Degraded: true, Retried: true},
	}, false)
	f.Add(real)
	f.Add(journalBytes(f, 0, nil, false))                               // header only
	f.Add(journalBytes(f, ^uint64(0), map[int]journal.Outcome{7: {}}, true)) // canonicalized
	f.Add(real[:len(real)-5])  // torn tail mid-record
	f.Add(real[:12])           // torn header
	f.Add([]byte{})            // empty file
	f.Add([]byte("SWFJ"))      // magic alone
	f.Add([]byte("SWFS\x01\x00\x00\x00")) // sidecar magic in a journal slot
	flipped := append([]byte(nil), real...)
	flipped[len(flipped)-3] ^= 0x40 // corrupt last record's CRC region
	f.Add(flipped)
	f.Add(append(append([]byte(nil), real...), 0xde, 0xad))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := journal.Open(path)
		if err != nil {
			return // clean rejection is a correct outcome
		}
		defer j.Close()
		// Whatever loaded must behave like a journal: replayed records are
		// queryable, appending after a matching Bind still works, and the
		// rewritten-on-open file must itself reopen.
		n := j.Len()
		if n < 0 {
			t.Fatalf("negative record count %d", n)
		}
		// The loader truncates to whole intact records. Duplicate-unit
		// records collapse in the replay map, so the file may hold more
		// records than Len() — but never a partial one, and never fewer
		// than the distinct units replayed.
		if fi, err := os.Stat(path); err == nil {
			if (fi.Size()-20)%12 != 0 {
				t.Fatalf("loader left a partial record: %d bytes", fi.Size())
			}
			if fi.Size() < int64(20+12*n) {
				t.Fatalf("loader kept %d bytes but replayed %d records", fi.Size(), n)
			}
		}
	})
}

// FuzzSideLogOpen does the same for the sidecar's variable-length records,
// whose length prefix gives corruption a second lever (a huge or torn
// length) the fixed-size journal records do not have.
func FuzzSideLogOpen(f *testing.F) {
	side := func(payloads ...string) []byte {
		dir, err := os.MkdirTemp("", "fuzzside")
		if err != nil {
			f.Fatal(err)
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "seed.fabric")
		s, err := journal.CreateSide(path)
		if err != nil {
			f.Fatal(err)
		}
		if err := s.Bind(0xc0ffee); err != nil {
			f.Fatal(err)
		}
		for i, p := range payloads {
			if err := s.Append(uint8(i+1), []byte(p)); err != nil {
				f.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			f.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	real := side("assign 0..16", "steal 8..16", "")
	f.Add(real)
	f.Add(side())
	f.Add(real[:len(real)-3]) // torn checksum
	huge := append([]byte(nil), real...)
	huge[20+1] = 0xff // blow up the first record's length prefix
	huge[20+4] = 0xff
	f.Add(huge)
	f.Add([]byte("SWFS"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.fabric")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := journal.OpenSide(path)
		if err != nil {
			return
		}
		defer s.Close()
		s.Replay(func(r journal.SideRecord) error {
			if len(r.Payload) > journal.MaxSideRecord {
				t.Fatalf("replayed a %d-byte record past the %d-byte bound", len(r.Payload), journal.MaxSideRecord)
			}
			return nil
		})
	})
}
