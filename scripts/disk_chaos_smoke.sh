#!/usr/bin/env bash
# Disk-chaos smoke: the DESIGN.md §5j storage/IPC contract end to end
# through the real binary. A journaled fig7 campaign runs with the
# journal's own file handle under deterministic disk chaos — injected
# ENOSPC, short and torn writes, failed fsyncs — and is SIGKILLed
# mid-campaign. The restart resumes from whatever intact prefix survived
# the faults, runs the rest under pipe chaos on supervised worker
# subprocesses, and must still finish with output AND canonical journal
# bytes identical to a clean run's.
#
# Checkpoint poison (disk.poison) is deliberately absent: poisoned
# checkpoints degrade real units, and the journal truthfully records that
# provenance — so a poisoned run's journal is NOT byte-identical to a
# clean one. That plane is covered by the campaign tests.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/swifi" ./cmd/swifi
cd "$workdir"

# Clean golden: output and canonical journal bytes.
./swifi -scale 0.05 -seed 7 -journal golden.wal fig7 > fig7_golden.txt

# Leg 1: disk chaos on the journal, SIGKILLed mid-campaign. The seed is
# pinned so the header write survives (the file stays resumable: a seed
# that faults the very first write leaves an empty journal -resume cannot
# read) while the very first record append degrades the journal — the
# draw schedule is a pure function of (seed, file ordinal, write index),
# so this holds on any machine.
DISK='seed=6,disk.enospc=0.08,disk.short-write=0.04,disk.torn-write=0.04,disk.sync-fail=0.5,disk.read-corrupt=0.01'
./swifi -scale 0.05 -seed 7 -journal chaos.wal -chaos "$DISK" \
  fig7 > fig7_chaos.txt 2> leg1.log &
LEG1=$!
sleep 3
kill -9 "$LEG1" 2>/dev/null || echo "leg 1 already done; resume degenerates to a replay"
wait "$LEG1" || true

# The injected disk failure must have actually bitten (degraded journal)
# unless the campaign outran the kill and recovered at completion.
if ! grep -q 'continuing without the journal' leg1.log &&
   ! grep -q 'recovered at completion' leg1.log; then
  echo "disk chaos never bit the journal; the smoke proved nothing" >&2
  cat leg1.log >&2
  exit 1
fi

# Leg 2: resume from the surviving prefix. The disk pressure has "lifted"
# (no disk.* keys) — completion-time recovery must canonicalize the
# journal back to clean-run bytes — while the proc-isolation pipes run
# under corruption, truncation and resets: CRC framing rejects poisoned
# frames, the supervisor restarts the worker and redelivers. Every sever
# costs a worker respawn, so the rates are set for a few dozen severs
# over the campaign's frames — enough to prove the restart/redeliver
# path (asserted below) without grinding the pool into respawn churn —
# and the delivery/restart headroom keeps the seeded bad luck from
# quarantining a unit or tripping the breaker: chaos must cost time,
# never verdicts.
PIPE='seed=9,pipe.corrupt=0.002,pipe.truncate=0.0005,pipe.reset=0.0005'
./swifi -scale 0.05 -seed 7 -journal chaos.wal -resume \
  -isolation proc -proc-max-deliveries 10 -proc-max-restarts 10000 \
  -chaos "$PIPE" -report report.json \
  fig7 > fig7_chaos.txt 2> leg2.log ||
  { echo "resume leg failed:" >&2; cat leg2.log >&2; exit 1; }

# The pipe chaos must have severed at least one worker (CRC reject or
# injected reset → restart → redeliver) and the pool must have absorbed it.
if ! grep -q 'redelivered' leg2.log; then
  echo "pipe chaos never severed a proc worker" >&2
  exit 1
fi

# Bit-identical output and journal despite ENOSPC, a SIGKILL and mangled
# worker pipes.
diff fig7_golden.txt fig7_chaos.txt
cmp golden.wal chaos.wal

# The absorbed abuse must be visible: at least one nonzero chaos_*
# counter in the end-of-run report.
if ! grep -Eq '"chaos_[a-z_]+": *[1-9]' report.json; then
  echo "no nonzero chaos_* counter in report.json" >&2
  exit 1
fi
echo "disk chaos smoke passed"
