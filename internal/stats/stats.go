// Package stats renders the paper's tables and figures from campaign
// results as plain-text reports (the paper used MS Excel off-line; this is
// the deterministic equivalent).
package stats

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/campaign"
	"repro/internal/fault"
	"repro/internal/odc"
	"repro/internal/programs"
)

// Table is a generic aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Render produces the aligned text form of the table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

func pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }

// Table1Row is one program's real-fault failure symptoms.
type Table1Row struct {
	Program string
	Runs    int
	Wrong   int
}

// Table1 renders the failure symptoms of the real software faults.
func Table1(rows []Table1Row) *Table {
	t := &Table{
		Title:   "Table 1 - Failure symptoms of the real software faults (intensive test)",
		Headers: []string{"Program", "Runs", "% Wrong results", "% Correct results"},
	}
	for _, r := range rows {
		w := 100 * float64(r.Wrong) / float64(r.Runs)
		t.Rows = append(t.Rows, []string{
			r.Program, fmt.Sprintf("%d", r.Runs), pct(w), pct(100 - w),
		})
	}
	return t
}

// Table2 renders the target programs and their main features.
func Table2() *Table {
	t := &Table{
		Title:   "Table 2 - Target programs and main features",
		Headers: []string{"Program", "Kind", "Lines", "Features"},
	}
	for _, p := range programs.Table4Programs() {
		t.Rows = append(t.Rows, []string{
			p.Name, p.Kind.String(), fmt.Sprintf("%d", p.LineCount()), p.Features,
		})
	}
	return t
}

// Table3 renders the error-type subset.
func Table3() *Table {
	t := &Table{
		Title:   "Table 3 - Subset of injected error types",
		Headers: []string{"Fault class", "Error types"},
	}
	var a []string
	for _, et := range fault.AssignmentErrTypes() {
		a = append(a, string(et))
	}
	var c []string
	for _, et := range fault.CheckingErrTypes() {
		c = append(c, string(et))
	}
	t.Rows = append(t.Rows,
		[]string{"Assignment", strings.Join(a, ", ")},
		[]string{"Checking", strings.Join(c, ", ")},
	)
	return t
}

// Table4 renders the injected-fault accounting of a campaign.
func Table4(res *campaign.Result) *Table {
	t := &Table{
		Title:   "Table 4 - Injected faults",
		Headers: []string{"Program", "Class", "Possible locations", "Chosen locations", "Faults", "Injected (faults x runs)"},
	}
	total := 0
	for _, pl := range res.Plans {
		t.Rows = append(t.Rows, []string{
			pl.Program, pl.Class.String(),
			fmt.Sprintf("%d", pl.Possible), fmt.Sprintf("%d", pl.Chosen),
			fmt.Sprintf("%d", pl.Faults), fmt.Sprintf("%d", pl.Injected),
		})
		total += pl.Injected
	}
	t.Rows = append(t.Rows, []string{"TOTAL", "", "", "", "", fmt.Sprintf("%d", total)})
	return t
}

// distTable renders failure-mode distributions keyed by row label.
func distTable(title, keyHeader string, dists map[string]campaign.Dist, order []string) *Table {
	t := &Table{
		Title:   title,
		Headers: []string{keyHeader, "Runs", "Correct", "Incorrect", "Hang", "Crash", "Activated"},
	}
	keys := order
	if keys == nil {
		for k := range dists {
			keys = append(keys, k)
		}
		sort.Strings(keys)
	}
	for _, k := range keys {
		d, ok := dists[k]
		if !ok {
			continue
		}
		act := 0.0
		if d.Runs > 0 {
			act = 100 * float64(d.Activated) / float64(d.Runs)
		}
		t.Rows = append(t.Rows, []string{
			k, fmt.Sprintf("%d", d.Runs),
			pct(d.Pct(campaign.Correct)), pct(d.Pct(campaign.Incorrect)),
			pct(d.Pct(campaign.Hang)), pct(d.Pct(campaign.Crash)),
			pct(act),
		})
	}
	return t
}

// programOrder lists the Table 4 programs in paper order.
func programOrder() []string {
	var out []string
	for _, p := range programs.Table4Programs() {
		out = append(out, p.Name)
	}
	return out
}

// Figure7 renders failure modes per program for assignment faults.
func Figure7(res *campaign.Result) *Table {
	return distTable(
		"Figure 7 - Failure modes observed in each program for assignment faults",
		"Program", res.ByProgram(fault.ClassAssignment), programOrder())
}

// Figure8 renders failure modes per program for checking faults.
func Figure8(res *campaign.Result) *Table {
	return distTable(
		"Figure 8 - Failure modes observed in each program for checking faults",
		"Program", res.ByProgram(fault.ClassChecking), programOrder())
}

// Figure9 renders failure modes per assignment error type.
func Figure9(res *campaign.Result) *Table {
	var order []string
	for _, et := range fault.AssignmentErrTypes() {
		order = append(order, string(et))
	}
	return distTable(
		"Figure 9 - Failure modes observed for assignment faults by error type",
		"Error type", res.ByErrType(fault.ClassAssignment), order)
}

// Figure10 renders failure modes per checking error type.
func Figure10(res *campaign.Result) *Table {
	var order []string
	for _, et := range fault.CheckingErrTypes() {
		order = append(order, string(et))
	}
	return distTable(
		"Figure 10 - Failure modes observed for checking faults by error type",
		"Error type", res.ByErrType(fault.ClassChecking), order)
}

// Figure2 renders the empirical fault-exposure chain of §3: p1 is the
// probability that the faulty code is executed (the fault activates), and
// P(failure | activated) merges p2·p3 — error generation and propagation.
func Figure2(res *campaign.Result) *Table {
	t := &Table{
		Title:   "Figure 2 - Empirical fault-exposure chain (per program, both classes)",
		Headers: []string{"Program", "Runs", "p1 = P(activated)", "P(failure | activated)", "P(failure)"},
	}
	both := make(map[string]campaign.Dist)
	for _, class := range []fault.Class{fault.ClassAssignment, fault.ClassChecking} {
		for k, d := range res.ByProgram(class) {
			agg, ok := both[k]
			if !ok {
				agg = campaign.Dist{Counts: make(map[campaign.FailureMode]int)}
			}
			agg.Runs += d.Runs
			agg.Activated += d.Activated
			for m, n := range d.Counts {
				agg.Counts[m] += n
			}
			both[k] = agg
		}
	}
	for _, k := range programOrder() {
		d, ok := both[k]
		if !ok || d.Runs == 0 {
			continue
		}
		failures := d.Runs - d.Counts[campaign.Correct]
		p1 := float64(d.Activated) / float64(d.Runs)
		pf := float64(failures) / float64(d.Runs)
		pfa := 0.0
		if d.Activated > 0 {
			// Failures require activation, so P(failure|activated) uses
			// the activated runs as denominator.
			pfa = float64(failures) / float64(d.Activated)
		}
		t.Rows = append(t.Rows, []string{
			k, fmt.Sprintf("%d", d.Runs),
			fmt.Sprintf("%.3f", p1), fmt.Sprintf("%.3f", pfa), fmt.Sprintf("%.3f", pf),
		})
	}
	return t
}

// Section5 renders the real-fault emulation verdicts and the field-data
// shares behind the paper's ≈44% conclusion.
func Section5(sum *campaign.Section5Summary) *Table {
	t := &Table{
		Title:   "Section 5 - Emulation of the real software faults",
		Headers: []string{"Program", "ODC type", "Verdict", "Triggers", "Evidence"},
	}
	for _, em := range sum.Emulations {
		triggers := "-"
		if em.Fault != nil {
			triggers = fmt.Sprintf("%d", em.Triggers)
		}
		t.Rows = append(t.Rows, []string{
			em.Program, em.ODCType.String(), em.Verdict.String(), triggers, em.Evidence,
		})
	}
	t.Rows = append(t.Rows, []string{"", "", "", "", ""})
	for _, v := range []odc.EmulationVerdict{odc.Emulable, odc.EmulableWithSupport, odc.NotEmulable} {
		t.Rows = append(t.Rows, []string{
			"field share", "", v.String(), "", pct(sum.ShareByVerdict[v]),
		})
	}
	return t
}

// FieldDistributionTable renders the ODC field data used by §5.
func FieldDistributionTable() *Table {
	t := &Table{
		Title:   "ODC field distribution of software faults (Christmansson & Chillarege)",
		Headers: []string{"Defect type", "Share", "SWIFI verdict"},
	}
	for _, fs := range odc.FieldDistribution() {
		t.Rows = append(t.Rows, []string{
			fs.Type.String(), pct(fs.Share), odc.VerdictFor(fs.Type).String(),
		})
	}
	t.Rows = append(t.Rows, []string{"algorithm+function", pct(odc.NotEmulableShare()), "the paper's ~44%"})
	return t
}

// ClassComparison renders the failure-mode totals of each injected fault
// class side by side: the paper remarks that the random-triggered
// software-fault emulations behave much like classic hardware faults
// ("the failure modes observed have the contribution of the hardware
// faults that are also emulated by the injected errors").
func ClassComparison(res *campaign.Result) *Table {
	t := &Table{
		Title:   "Fault-class comparison - software-fault emulations vs hardware faults",
		Headers: []string{"Fault class", "Runs", "Correct", "Incorrect", "Hang", "Crash", "Activated"},
	}
	for _, class := range []fault.Class{fault.ClassAssignment, fault.ClassChecking, fault.ClassHardware} {
		d := res.Total(class)
		if d.Runs == 0 {
			continue
		}
		act := 100 * float64(d.Activated) / float64(d.Runs)
		t.Rows = append(t.Rows, []string{
			class.String(), fmt.Sprintf("%d", d.Runs),
			pct(d.Pct(campaign.Correct)), pct(d.Pct(campaign.Incorrect)),
			pct(d.Pct(campaign.Hang)), pct(d.Pct(campaign.Crash)),
			pct(act),
		})
	}
	return t
}

// TriggerStudy renders the trigger-policy comparison: identical fault sets
// (What/Where fixed), different When settings. The paper's conclusion
// hypothesises that the always-on random trigger is what makes injected
// faults hit so much harder than real software faults; softer triggers
// should push the distribution toward the dormant end.
func TriggerStudy(res *campaign.TriggerStudyResult) *Table {
	t := &Table{
		Title: fmt.Sprintf("Trigger study on %s - %d faults x %d inputs per policy",
			res.Program, res.Faults, res.Cases),
		Headers: []string{"Trigger policy (When)", "Runs", "Correct", "Incorrect", "Hang", "Crash", "Activated"},
	}
	for i, pol := range res.Policies {
		d := res.Dists[i]
		act := 0.0
		if d.Runs > 0 {
			act = 100 * float64(d.Activated) / float64(d.Runs)
		}
		t.Rows = append(t.Rows, []string{
			pol.Name, fmt.Sprintf("%d", d.Runs),
			pct(d.Pct(campaign.Correct)), pct(d.Pct(campaign.Incorrect)),
			pct(d.Pct(campaign.Hang)), pct(d.Pct(campaign.Crash)),
			pct(act),
		})
	}
	return t
}

// MutationStudy renders the source-mutation versus machine-injection
// comparison: the abstraction-gap validation (see internal/mutation).
func MutationStudy(results []StudyRow) *Table {
	t := &Table{
		Title:   "Mutation vs injection - same Table 3 error type, source level vs machine level",
		Headers: []string{"Program", "Locations", "Pairs", "Paired runs", "Equivalent"},
	}
	for _, r := range results {
		eq := 0.0
		if r.Runs > 0 {
			eq = 100 * float64(r.Equivalent) / float64(r.Runs)
		}
		t.Rows = append(t.Rows, []string{
			r.Program, fmt.Sprintf("%d", r.Locations), fmt.Sprintf("%d", r.Pairs),
			fmt.Sprintf("%d", r.Runs), pct(eq),
		})
	}
	return t
}

// StudyRow is the per-program summary of a mutation study (mirrors
// mutation.StudyResult without importing it, to keep stats dependency-light).
type StudyRow struct {
	Program    string
	Locations  int
	Pairs      int
	Runs       int
	Equivalent int
}
