package metrics_test

import (
	"testing"
	"testing/quick"

	"repro/internal/metrics"
	"repro/internal/programs"
)

const metricsProbe = `
int flat(int a) {
    return a + 1;
}
int busy(int a, int b) {
    int i;
    int acc = 0;
    for (i = 0; i < a; i++) {
        if (i % 2 == 0 && i < b) {
            acc = acc + (i > 3 ? i : -i);
        } else {
            while (acc > 100) {
                acc = acc - 7;
            }
        }
    }
    return acc;
}
int main() {
    print_int(busy(10, flat(4)));
    return 0;
}`

func analyze(t *testing.T) *metrics.Report {
	t.Helper()
	rep, err := metrics.AnalyzeSource("probe", metricsProbe)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestAnalyzeShape(t *testing.T) {
	rep := analyze(t)
	if len(rep.Funcs) != 3 {
		t.Fatalf("got %d functions, want 3", len(rep.Funcs))
	}
	flat, ok := rep.FuncByName("flat")
	if !ok {
		t.Fatal("flat missing")
	}
	busy, ok := rep.FuncByName("busy")
	if !ok {
		t.Fatal("busy missing")
	}
	if flat.Cyclomatic != 1 {
		t.Errorf("flat cyclomatic = %d, want 1", flat.Cyclomatic)
	}
	// busy: for + if + && + ternary + while = 5 decisions.
	if busy.Cyclomatic != 6 {
		t.Errorf("busy cyclomatic = %d, want 6", busy.Cyclomatic)
	}
	if busy.MaxNesting < 3 {
		t.Errorf("busy nesting = %d, want >= 3", busy.MaxNesting)
	}
	if busy.Score() <= flat.Score() {
		t.Errorf("busy score %.2f should exceed flat score %.2f", busy.Score(), flat.Score())
	}
	if busy.HalsteadVolume() <= 0 {
		t.Error("busy has zero Halstead volume")
	}
	if rep.TotalCyclomatic() != flat.Cyclomatic+busy.Cyclomatic+rep.Funcs[2].Cyclomatic {
		t.Error("TotalCyclomatic mismatch")
	}
	main, _ := rep.FuncByName("main")
	if main.Calls != 3 { // print_int, busy, flat
		t.Errorf("main calls = %d, want 3", main.Calls)
	}
	if _, ok := rep.FuncByName("nosuch"); ok {
		t.Error("FuncByName(nosuch) succeeded")
	}
}

func TestAnalyzeSourceErrors(t *testing.T) {
	if _, err := metrics.AnalyzeSource("bad", "int main( {"); err == nil {
		t.Error("parse error not reported")
	}
	if _, err := metrics.AnalyzeSource("bad", "int main() { return x; }"); err == nil {
		t.Error("check error not reported")
	}
}

func TestChooseWeighted(t *testing.T) {
	w := []float64{1, 1, 1, 100, 1}
	// Over many seeds, index 3 must be chosen far more often than others.
	hits := make([]int, len(w))
	for seed := int64(0); seed < 200; seed++ {
		for _, i := range metrics.ChooseWeighted(w, 2, seed) {
			hits[i]++
		}
	}
	if hits[3] < 190 {
		t.Errorf("heavy index chosen %d/200 times; weighting ineffective", hits[3])
	}
	// Determinism and set semantics.
	a := metrics.ChooseWeighted(w, 3, 42)
	b := metrics.ChooseWeighted(w, 3, 42)
	if len(a) != 3 {
		t.Fatalf("got %d indices", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
	if got := metrics.ChooseWeighted(w, 99, 1); len(got) != len(w) {
		t.Errorf("n >= len: got %d", len(got))
	}
}

// TestChooseWeightedProperty: results are always distinct, sorted, in range.
func TestChooseWeightedProperty(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		for i, v := range raw {
			w[i] = float64(v)
		}
		n := len(w) / 2
		got := metrics.ChooseWeighted(w, n, seed)
		if len(got) != n {
			return false
		}
		seen := map[int]bool{}
		last := -1
		for _, i := range got {
			if i < 0 || i >= len(w) || seen[i] || i < last {
				return false
			}
			seen[i] = true
			last = i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLocationWeightsOnRealProgram(t *testing.T) {
	p, _ := programs.ByName("C.team1")
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rep := metrics.Analyze(p.Name, c.AST)
	funcs := metrics.AssignFuncs(c)
	if len(funcs) != len(c.Debug.Assigns) {
		t.Fatal("AssignFuncs length mismatch")
	}
	w := metrics.LocationWeights(rep, funcs)
	for i, wt := range w {
		if wt <= 0 {
			t.Errorf("location %d (func %s) has weight %f", i, funcs[i], wt)
		}
	}
	cfuncs := metrics.CheckFuncs(c)
	if len(cfuncs) != len(c.Debug.Checks) {
		t.Fatal("CheckFuncs length mismatch")
	}
	// main is the most complex function of C.team1; its locations must
	// carry the highest weight.
	mainM, _ := rep.FuncByName("main")
	movesM, _ := rep.FuncByName("init_moves")
	if mainM.Score() <= movesM.Score() {
		t.Errorf("main score %.1f should exceed init_moves score %.1f", mainM.Score(), movesM.Score())
	}
}
