package cc

// parser implements recursive-descent parsing with precedence climbing for
// expressions.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a translation unit.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for p.peek().kind != tokEOF {
		if err := p.parseTopLevel(f); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos+1 < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.peek()
	if t.kind != k {
		return t, errf(t.line, t.col, "expected %s, found %s", k, describe(t))
	}
	return p.advance(), nil
}

func describe(t token) string {
	switch t.kind {
	case tokIdent:
		return "identifier " + t.text
	case tokNumber:
		return "number " + t.text
	default:
		return t.kind.String()
	}
}

func (p *parser) accept(k tokKind) bool {
	if p.peek().kind == k {
		p.advance()
		return true
	}
	return false
}

// parseBaseType parses int/char/void plus pointer stars.
func (p *parser) parseBaseType() (*Type, error) {
	t := p.peek()
	var base *Type
	switch t.kind {
	case tokInt:
		base = IntType
	case tokChar_:
		base = CharType
	case tokVoid:
		base = VoidType
	default:
		return nil, errf(t.line, t.col, "expected type, found %s", describe(t))
	}
	p.advance()
	for p.accept(tokStar) {
		base = &Type{Kind: TypePointer, Elem: base}
	}
	return base, nil
}

func isTypeStart(k tokKind) bool {
	return k == tokInt || k == tokChar_ || k == tokVoid
}

// parseTopLevel parses one global declaration or function definition.
func (p *parser) parseTopLevel(f *File) error {
	start := p.peek()
	typ, err := p.parseBaseType()
	if err != nil {
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if p.peek().kind == tokLParen {
		fn, err := p.parseFuncRest(typ, name)
		if err != nil {
			return err
		}
		f.Funcs = append(f.Funcs, fn)
		return nil
	}
	// Global variable(s).
	if typ.Kind == TypeVoid {
		return errf(start.line, start.col, "variable %s has void type", name.text)
	}
	for {
		decl, err := p.parseDeclRest(typ, name, true)
		if err != nil {
			return err
		}
		decl.IsGlobal = true
		f.Globals = append(f.Globals, decl)
		if p.accept(tokComma) {
			name, err = p.expect(tokIdent)
			if err != nil {
				return err
			}
			continue
		}
		_, err = p.expect(tokSemi)
		return err
	}
}

// parseDeclRest parses the array suffix and initialiser of a declaration
// whose base type and name have been consumed.
func (p *parser) parseDeclRest(base *Type, name token, global bool) (*VarDecl, error) {
	typ := base
	var dims []int32
	for p.accept(tokLBracket) {
		n, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		if n.val <= 0 {
			return nil, errf(n.line, n.col, "array dimension must be positive")
		}
		dims = append(dims, n.val)
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
	}
	for i := len(dims) - 1; i >= 0; i-- {
		typ = &Type{Kind: TypeArray, Elem: typ, Len: dims[i]}
	}
	d := &VarDecl{Name: name.text, Type: typ, Line: name.line}
	if p.accept(tokAssign) {
		if typ.Kind == TypeArray {
			return nil, errf(name.line, name.col, "array initialisers are not supported")
		}
		e, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	return d, nil
}

// parseFuncRest parses a function definition after its return type and name.
func (p *parser) parseFuncRest(ret *Type, name token) (*FuncDecl, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name.text, Ret: ret, Line: name.line}
	if !p.accept(tokRParen) {
		if p.peek().kind == tokVoid && p.peek2().kind == tokRParen {
			p.advance()
			p.advance()
		} else {
			for {
				ptype, err := p.parseBaseType()
				if err != nil {
					return nil, err
				}
				pname, err := p.expect(tokIdent)
				if err != nil {
					return nil, err
				}
				if ptype.Kind == TypeVoid {
					return nil, errf(pname.line, pname.col, "parameter %s has void type", pname.text)
				}
				// Array parameters decay to pointers.
				for p.accept(tokLBracket) {
					if p.peek().kind == tokNumber {
						p.advance()
					}
					if _, err := p.expect(tokRBracket); err != nil {
						return nil, err
					}
					ptype = &Type{Kind: TypePointer, Elem: ptype}
				}
				fn.Params = append(fn.Params, &VarDecl{Name: pname.text, Type: ptype, Line: pname.line})
				if !p.accept(tokComma) {
					break
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseBlock() (*Block, error) {
	lb, err := p.expect(tokLBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{Line: lb.line}
	for !p.accept(tokRBrace) {
		if p.peek().kind == tokEOF {
			return nil, errf(lb.line, lb.col, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch t.kind {
	case tokLBrace:
		return p.parseBlock()
	case tokIf:
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept(tokElse) {
			els, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return &If{Cond: cond, Then: then, Else: els, Line: t.line}, nil
	case tokWhile:
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body, Line: t.line}, nil
	case tokFor:
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		f := &For{Line: t.line}
		if !p.accept(tokSemi) {
			init, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			f.Init = init
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
		}
		if !p.accept(tokSemi) {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Cond = cond
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
		}
		if p.peek().kind != tokRParen {
			post, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			f.Post = post
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		f.Body = body
		return f, nil
	case tokReturn:
		p.advance()
		r := &Return{Line: t.line}
		if !p.accept(tokSemi) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.E = e
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
		}
		return r, nil
	case tokBreak:
		p.advance()
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &Break{Line: t.line}, nil
	case tokContinue:
		p.advance()
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &Continue{Line: t.line}, nil
	case tokSemi:
		p.advance()
		return &Block{Line: t.line}, nil
	}
	if isTypeStart(t.kind) {
		typ, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		if typ.Kind == TypeVoid {
			return nil, errf(t.line, t.col, "variable has void type")
		}
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		// Multiple declarators per line are split into one DeclStmt each
		// wrapped in a synthetic scope-transparent block.
		blk := &Block{Line: t.line, NoScope: true}
		for {
			d, err := p.parseDeclRest(typ, name, false)
			if err != nil {
				return nil, err
			}
			blk.Stmts = append(blk.Stmts, &DeclStmt{Decl: d, Line: d.Line})
			if p.accept(tokComma) {
				name, err = p.expect(tokIdent)
				if err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		if len(blk.Stmts) == 1 {
			return blk.Stmts[0], nil
		}
		return blk, nil
	}
	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return s, nil
}

// parseSimpleStmt parses an expression statement (used bare and in for
// clauses).
func (p *parser) parseSimpleStmt() (Stmt, error) {
	t := p.peek()
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{E: e, Line: t.line}, nil
}

// Expression grammar, lowest to highest precedence:
//
//	assign:  unary (= | += | -=) assign | ternary
//	ternary: or (? expr : ternary)?
//	or:      and (|| and)*
//	and:     eq (&& eq)*
//	eq:      rel ((==|!=) rel)*
//	rel:     add ((<|<=|>|>=) add)*
//	add:     mul ((+|-) mul)*
//	mul:     unary ((*|/|%) unary)*
//	unary:   (-|!|*|&) unary | postfix (++|--)? ...
func (p *parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

func (p *parser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	switch t.kind {
	case tokAssign:
		p.advance()
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{exprBase: exprBase{Line: t.line, Col: t.col}, LHS: lhs, RHS: rhs}, nil
	case tokPlusEq, tokMinusEq:
		p.advance()
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		op := "+"
		if t.kind == tokMinusEq {
			op = "-"
		}
		sum := &Binary{exprBase: exprBase{Line: t.line, Col: t.col}, Op: op, X: lhs, Y: rhs}
		return &Assign{exprBase: exprBase{Line: t.line, Col: t.col}, LHS: lhs, RHS: sum}, nil
	}
	return lhs, nil
}

func (p *parser) parseTernary() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokQuestion {
		p.advance()
		tv, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		fv, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		return &CondExpr{exprBase: exprBase{Line: t.line, Col: t.col}, C: c, T: tv, F: fv}, nil
	}
	return c, nil
}

// binOpLevels lists binary operators by ascending precedence level.
var binOpLevels = [][]struct {
	k  tokKind
	op string
}{
	{{tokOrOr, "||"}},
	{{tokAndAnd, "&&"}},
	{{tokEq, "=="}, {tokNe, "!="}},
	{{tokLt, "<"}, {tokLe, "<="}, {tokGt, ">"}, {tokGe, ">="}},
	{{tokPlus, "+"}, {tokMinus, "-"}},
	{{tokStar, "*"}, {tokSlash, "/"}, {tokPercent, "%"}},
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(binOpLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		matched := ""
		for _, cand := range binOpLevels[level] {
			if t.kind == cand.k {
				matched = cand.op
				break
			}
		}
		if matched == "" {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase: exprBase{Line: t.line, Col: t.col}, Op: matched, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokMinus:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{Line: t.line, Col: t.col}, Op: "-", X: x}, nil
	case tokNot:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{Line: t.line, Col: t.col}, Op: "!", X: x}, nil
	case tokStar:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{Line: t.line, Col: t.col}, Op: "*", X: x}, nil
	case tokAmp:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{Line: t.line, Col: t.col}, Op: "&", X: x}, nil
	case tokPlusPlus, tokMinusMinus:
		// Prefix ++x / --x desugar to x = x +/- 1.
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return incDec(x, t), nil
	}
	return p.parsePostfix()
}

// incDec builds the x = x ± 1 desugaring of ++/--.
func incDec(x Expr, t token) Expr {
	op := "+"
	if t.kind == tokMinusMinus {
		op = "-"
	}
	one := &IntLit{exprBase: exprBase{Line: t.line, Col: t.col}, Val: 1}
	sum := &Binary{exprBase: exprBase{Line: t.line, Col: t.col}, Op: op, X: x, Y: one}
	return &Assign{exprBase: exprBase{Line: t.line, Col: t.col}, LHS: x, RHS: sum}
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch t.kind {
		case tokLBracket:
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			e = &Index{exprBase: exprBase{Line: t.line, Col: t.col}, X: e, Idx: idx}
		case tokPlusPlus, tokMinusMinus:
			// Postfix ++/-- is only supported in statement position, where
			// its value is discarded, so the prefix desugaring is
			// equivalent. Sema rejects value uses.
			p.advance()
			e = incDec(e, t)
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber, tokChar:
		p.advance()
		return &IntLit{exprBase: exprBase{Line: t.line, Col: t.col}, Val: t.val}, nil
	case tokString:
		p.advance()
		return &StrLit{exprBase: exprBase{Line: t.line, Col: t.col}, Val: t.str}, nil
	case tokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		p.advance()
		if p.peek().kind == tokLParen {
			p.advance()
			call := &Call{exprBase: exprBase{Line: t.line, Col: t.col}, Name: t.text}
			if !p.accept(tokRParen) {
				for {
					a, err := p.parseAssignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(tokComma) {
						break
					}
				}
				if _, err := p.expect(tokRParen); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		return &Ident{exprBase: exprBase{Line: t.line, Col: t.col}, Name: t.text}, nil
	}
	return nil, errf(t.line, t.col, "expected expression, found %s", describe(t))
}
