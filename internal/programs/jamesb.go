package programs

// The JamesB implementations: three designs for the seeded string
// codification spec (see oracle.go). team6 uses alphabet lookup tables and
// carries the stack-layout real fault of the paper's Figure 4; team7 is
// arithmetic and carries an algorithm fault; team11 is the fault-free
// incremental-shift design used in the §6 campaigns.

// jamesbTeam6 buffers the input and output phrases in fixed char arrays.
// Real fault (assignment, paper Figure 4): the buffers are declared
// char[80] instead of char[81], so for maximum-length input the output
// terminator lands one byte past phrase2 — on the first (most significant)
// byte of key, which holds the raw, possibly negative seed. The program
// therefore fails only for 80-character strings combined with a negative
// seed: the rarest failure in the suite, like the paper's JB.team6.
const jamesbTeam6Correct = `
/* JB.team6 - string codifier: alphabet table lookup. */
char alpha[27];

void build_alpha() {
    int i;
    for (i = 0; i < 26; i++) {
        alpha[i] = 'a' + i;
    }
    alpha[26] = 0;
}

int find_pos(int c) {
    int i;
    for (i = 0; i < 26; i++) {
        if (alpha[i] == c) {
            return i;
        }
    }
    return -1;
}

int main() {
    char phrase[81];
    char phrase2[81];
    int key;
    int seed; int len; int i; int c; int pos; int shift;
    seed = read_int();
    len = read_int();
    build_alpha();
    for (i = 0; i < len; i++) {
        phrase[i] = read_char();
    }
    phrase[len] = 0;
    key = seed;
    phrase2[len] = 0;
    for (i = 0; i < len; i++) {
        c = phrase[i];
        shift = (key + 7 * i) % 26;
        if (shift < 0) {
            shift = shift + 26;
        }
        if (c >= 'a' && c <= 'z') {
            pos = find_pos(c);
            phrase2[i] = alpha[(pos + shift) % 26];
        } else {
            if (c >= 'A' && c <= 'Z') {
                pos = find_pos(c + 32);
                phrase2[i] = alpha[(pos + shift) % 26] - 32;
            } else {
                phrase2[i] = c;
            }
        }
    }
    for (i = 0; phrase2[i] != 0; i++) {
        print_char(phrase2[i]);
    }
    print_char(10);
    return 0;
}
`

// jamesbTeam7 codes characters with plain arithmetic and a single
// conditional wrap-around, which is only correct for shifts in [0, 26).
// Real fault (algorithm): the faulty version never normalises negative
// shifts — the step "if (shift < 0) shift += 26" is missing entirely — so
// any negative seed drives characters below 'a'/'A' and produces garbage.
// The fix adds a processing step rather than touching an existing
// statement, which is why the paper classes such faults as algorithm.
const jamesbTeam7Correct = `
/* JB.team7 - string codifier: arithmetic with conditional wrap. */
int code_char(int c, int shift) {
    if (c >= 'a' && c <= 'z') {
        c = c + shift;
        if (c > 'z') {
            c = c - 26;
        }
        return c;
    }
    if (c >= 'A' && c <= 'Z') {
        c = c + shift;
        if (c > 'Z') {
            c = c - 26;
        }
        return c;
    }
    return c;
}

int main() {
    char buf[81];
    int seed; int len; int i; int shift;
    seed = read_int();
    len = read_int();
    for (i = 0; i < len; i++) {
        buf[i] = read_char();
    }
    for (i = 0; i < len; i++) {
        shift = (seed + 7 * i) % 26;
        if (shift < 0) {
            shift = shift + 26;
        }
        buf[i] = code_char(buf[i], shift);
    }
    for (i = 0; i < len; i++) {
        print_char(buf[i]);
    }
    print_char(10);
    return 0;
}
`

// jamesbTeam11 streams characters one at a time and maintains the shift
// incrementally (add 7, wrap at 26), avoiding buffers and multiplication.
// No real fault; this is the second JamesB target of the §6 campaigns.
const jamesbTeam11 = `
/* JB.team11 - string codifier: streaming with incremental shift. */
int wrap26(int v) {
    while (v >= 26) {
        v = v - 26;
    }
    while (v < 0) {
        v = v + 26;
    }
    return v;
}

int main() {
    int seed; int len; int i; int c; int shift;
    seed = read_int();
    len = read_int();
    shift = wrap26(seed % 26);
    i = 0;
    while (i < len) {
        c = read_char();
        if (c >= 'a' && c <= 'z') {
            c = 'a' + wrap26(c - 'a' + shift);
        }
        if (c >= 'A' && c <= 'Z') {
            c = 'A' + wrap26(c - 'A' + shift);
        }
        print_char(c);
        shift = wrap26(shift + 7);
        i = i + 1;
    }
    print_char(10);
    return 0;
}
`
