package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer guards a bytes.Buffer: the render loop writes from its own
// goroutine while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestProgressNonTTY(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, false, 10*time.Millisecond)
	var done int64
	var mu sync.Mutex
	p.Start(func() ProgressSnap {
		mu.Lock()
		defer mu.Unlock()
		return ProgressSnap{
			Done: done, Total: 10,
			Parts: []Part{{Name: "correct", N: uint64(done)}},
			Note:  "healthy",
		}
	})
	mu.Lock()
	done = 4
	mu.Unlock()
	time.Sleep(35 * time.Millisecond)
	p.Stop()

	out := buf.String()
	if !strings.Contains(out, "4/10") {
		t.Fatalf("progress output missing count:\n%q", out)
	}
	if !strings.Contains(out, "correct 4") || !strings.Contains(out, "[healthy]") {
		t.Fatalf("progress output missing parts/note:\n%q", out)
	}
	if strings.Contains(out, "\r") {
		t.Fatal("non-TTY output must not use carriage returns")
	}
}

func TestProgressTTYRedraw(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, true, 5*time.Millisecond)
	p.Start(func() ProgressSnap { return ProgressSnap{Done: 1, Total: 2} })
	time.Sleep(20 * time.Millisecond)
	p.Stop()
	out := buf.String()
	if !strings.Contains(out, "\r") {
		t.Fatalf("TTY output must redraw with \\r:\n%q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("final TTY line must end in newline:\n%q", out)
	}
}

func TestProgressRestartable(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, false, 5*time.Millisecond)
	for i := 0; i < 3; i++ {
		p.Start(func() ProgressSnap { return ProgressSnap{Done: 1, Total: 1} })
		p.Stop()
	}
	// Stop with no Start is a no-op, and double Stop must not panic.
	p.Stop()
}

func TestProgressSilentWithoutWork(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, false, time.Millisecond)
	p.Start(func() ProgressSnap { return ProgressSnap{} })
	time.Sleep(10 * time.Millisecond)
	p.Stop()
	if got := buf.String(); got != "" {
		t.Fatalf("empty snapshots must render nothing, got %q", got)
	}
}

func TestRenderLine(t *testing.T) {
	line := renderLine(ProgressSnap{Done: 50, Total: 100, Parts: []Part{{Name: "crash", N: 3}}}, 10*time.Second)
	for _, want := range []string{"50/100", "50.0%", "5/s", "ETA 10s", "crash 3"} {
		if !strings.Contains(line, want) {
			t.Fatalf("renderLine = %q missing %q", line, want)
		}
	}
}
