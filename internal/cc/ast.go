package cc

// TypeKind classifies a Type.
type TypeKind int

// Type kinds.
const (
	TypeInt TypeKind = iota + 1
	TypeChar
	TypeVoid
	TypePointer
	TypeArray
)

// Type describes a mini-C type.
type Type struct {
	Kind TypeKind
	Elem *Type // element type for pointers and arrays
	Len  int32 // array length
}

// Canonical scalar types.
var (
	IntType  = &Type{Kind: TypeInt}
	CharType = &Type{Kind: TypeChar}
	VoidType = &Type{Kind: TypeVoid}
)

// Size returns the storage size of the type in bytes.
func (t *Type) Size() int32 {
	switch t.Kind {
	case TypeInt, TypePointer:
		return 4
	case TypeChar:
		return 1
	case TypeArray:
		return t.Len * t.Elem.Size()
	}
	return 0
}

// IsScalar reports whether the type fits in a register.
func (t *Type) IsScalar() bool {
	return t.Kind == TypeInt || t.Kind == TypeChar || t.Kind == TypePointer
}

// String renders the type in C-like syntax.
func (t *Type) String() string {
	switch t.Kind {
	case TypeInt:
		return "int"
	case TypeChar:
		return "char"
	case TypeVoid:
		return "void"
	case TypePointer:
		return t.Elem.String() + "*"
	case TypeArray:
		return t.Elem.String() + "[]"
	}
	return "?"
}

// equalTypes reports structural type equality.
func equalTypes(a, b *Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case TypePointer:
		return equalTypes(a.Elem, b.Elem)
	case TypeArray:
		return a.Len == b.Len && equalTypes(a.Elem, b.Elem)
	}
	return true
}

// File is a parsed translation unit.
type File struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// VarDecl declares a global, local or parameter variable.
type VarDecl struct {
	Name string
	Type *Type
	Init Expr // optional initialiser (scalars only)
	Line int

	// Filled by codegen: stack offset from SP for locals/params, or the
	// data-segment symbol for globals.
	IsGlobal bool
	Offset   int32
	Sym      string
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []*VarDecl
	Body   *Block
	Line   int
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// Block is a brace-delimited statement list with its own scope. NoScope
// marks synthetic groups (multi-declarator lines) that must share the
// enclosing scope.
type Block struct {
	Stmts   []Stmt
	Line    int
	NoScope bool
}

// If is an if/else statement.
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Line int
}

// While is a while loop.
type While struct {
	Cond Expr
	Body Stmt
	Line int
}

// For is a for loop; Init and Post may be nil, Cond may be nil (infinite).
type For struct {
	Init Stmt
	Cond Expr
	Post Stmt
	Body Stmt
	Line int
}

// Return is a return statement; E may be nil for void functions.
type Return struct {
	E    Expr
	Line int
}

// Break terminates the innermost loop.
type Break struct{ Line int }

// Continue resumes the innermost loop.
type Continue struct{ Line int }

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct {
	E    Expr
	Line int
}

// DeclStmt is a local variable declaration.
type DeclStmt struct {
	Decl *VarDecl
	Line int
}

func (*Block) stmtNode()    {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*ExprStmt) stmtNode() {}
func (*DeclStmt) stmtNode() {}

// Expr is implemented by all expression nodes. Types are filled in by
// semantic analysis.
type Expr interface {
	exprNode()
	TypeOf() *Type
	Pos() (line, col int)
}

// exprBase carries the position and resolved type of an expression.
type exprBase struct {
	Line int
	Col  int
	Typ  *Type
}

func (b *exprBase) TypeOf() *Type   { return b.Typ }
func (b *exprBase) Pos() (int, int) { return b.Line, b.Col }
func (b *exprBase) exprNode()       {}

// IntLit is an integer or character literal.
type IntLit struct {
	exprBase
	Val int32
}

// StrLit is a string literal; it compiles to a NUL-terminated byte array in
// the data segment and has type char*.
type StrLit struct {
	exprBase
	Val string
}

// Ident references a variable.
type Ident struct {
	exprBase
	Name string
	Decl *VarDecl // resolved by sema
}

// Unary is -x, !x, *x or &x.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Binary is x op y for arithmetic, comparison and logical operators.
type Binary struct {
	exprBase
	Op string
	X  Expr
	Y  Expr
}

// Assign is lhs = rhs (also the desugared form of +=, -=, ++ and --).
type Assign struct {
	exprBase
	LHS Expr
	RHS Expr
}

// CondExpr is the ternary c ? t : f.
type CondExpr struct {
	exprBase
	C Expr
	T Expr
	F Expr
}

// Call invokes a function or builtin by name.
type Call struct {
	exprBase
	Name string
	Args []Expr
	Fn   *FuncDecl // resolved by sema; nil for builtins
}

// Index is x[i].
type Index struct {
	exprBase
	X   Expr
	Idx Expr
}
