package campaign_test

import (
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/golden"
)

// TestCorruptCheckpointDegradesToStraightExecution proves the degraded-mode
// policy: when every golden checkpoint in the store fails its integrity
// check, the campaign falls back to straight execution for the affected
// units and still produces the exact same Result — only the degradation
// counter betrays that the fast path was lost.
func TestCorruptCheckpointDegradesToStraightExecution(t *testing.T) {
	cfg := campaign.Config{
		Programs:      []string{"JB.team11"},
		CasesPerFault: 3,
		Seed:          21,
		Workers:       4,
	}
	// The shared store must not leak corrupted checkpoints (or stale healthy
	// ones) into other tests, in either direction.
	golden.Shared.Purge()
	t.Cleanup(golden.Shared.Purge)

	ref, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Exec.Degraded != 0 {
		t.Fatalf("healthy run reports %d degraded units", ref.Exec.Degraded)
	}

	// Corrupt every checkpoint the first campaign left in the store. The
	// records are cached by (program, case, watch set), so the rerun will
	// hit exactly these.
	tampered := 0
	golden.Shared.Each(func(rec *golden.Record) {
		for i := range rec.Checkpoints {
			rec.Checkpoints[i].Sum ^= 0xdeadbeef
			tampered++
		}
	})
	if tampered == 0 {
		t.Fatal("the campaign left no checkpoints to corrupt; the test is vacuous")
	}

	res, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec.Degraded == 0 {
		t.Fatal("corrupted checkpoints did not increment the degradation counter")
	}
	// The outcome must be unaffected: degraded units re-execute their full
	// fault-free prefix instead of fast-forwarding, which is slower but
	// semantically identical.
	if !reflect.DeepEqual(res.Entries, ref.Entries) {
		t.Errorf("degraded run changed the campaign outcome:\ndegraded: %+v\nhealthy:  %+v", res.Entries, ref.Entries)
	}
	if res.Runs != ref.Runs {
		t.Errorf("degraded run counts %d runs, healthy %d", res.Runs, ref.Runs)
	}
}
