package locator_test

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/fault"
	"repro/internal/injector"
	"repro/internal/locator"
	"repro/internal/vm"
)

const probe = `
int flags[8];
int main() {
    int i;
    int count = 0;
    for (i = 0; i < 8; i++) {
        flags[i] = i % 3;
    }
    for (i = 0; i < 8; i++) {
        if (flags[i] != 0 && i <= 6) {
            count = count + 1;
        }
    }
    print_int(count);
    return 0;
}`

func compileProbe(t *testing.T) *cc.Compiled {
	t.Helper()
	c, err := cc.Compile(probe)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChooseLocations(t *testing.T) {
	all := locator.ChooseLocations(5, 10, 1)
	if len(all) != 5 {
		t.Errorf("n >= possible: got %d, want all 5", len(all))
	}
	some := locator.ChooseLocations(100, 7, 1)
	if len(some) != 7 {
		t.Fatalf("got %d locations, want 7", len(some))
	}
	seen := map[int]bool{}
	last := -1
	for _, i := range some {
		if i < 0 || i >= 100 {
			t.Errorf("index %d out of range", i)
		}
		if seen[i] {
			t.Errorf("duplicate index %d", i)
		}
		if i < last {
			t.Error("indices not sorted")
		}
		seen[i] = true
		last = i
	}
	again := locator.ChooseLocations(100, 7, 1)
	for i := range some {
		if some[i] != again[i] {
			t.Fatal("ChooseLocations not deterministic")
		}
	}
	other := locator.ChooseLocations(100, 7, 2)
	same := true
	for i := range some {
		if some[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical choices")
	}
}

func TestPlanAssignment(t *testing.T) {
	c := compileProbe(t)
	plan, err := locator.PlanAssignment(c, "probe", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Possible != len(c.Debug.Assigns) {
		t.Errorf("possible = %d, want %d", plan.Possible, len(c.Debug.Assigns))
	}
	if len(plan.Chosen) != 2 {
		t.Errorf("chosen = %d, want 2", len(plan.Chosen))
	}
	if len(plan.Faults) != 8 {
		t.Errorf("faults = %d, want 2 locations × 4 error types", len(plan.Faults))
	}
	for _, f := range plan.Faults {
		if err := f.Validate(); err != nil {
			t.Errorf("fault %s invalid: %v", f.ID, err)
		}
		if f.Class != fault.ClassAssignment {
			t.Errorf("fault %s class %v", f.ID, f.Class)
		}
		if !strings.HasPrefix(f.ID, "probe/assign/") {
			t.Errorf("fault ID %q", f.ID)
		}
		if len(f.TriggerAddrs()) != 1 {
			t.Errorf("fault %s needs %d triggers, want 1", f.ID, len(f.TriggerAddrs()))
		}
	}
}

func TestPlanChecking(t *testing.T) {
	c := compileProbe(t)
	plan, err := locator.PlanChecking(c, "probe", len(c.Debug.Checks), 3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Possible != len(c.Debug.Checks) {
		t.Errorf("possible = %d, want %d", plan.Possible, len(c.Debug.Checks))
	}
	types := map[fault.ErrType]bool{}
	for _, f := range plan.Faults {
		if err := f.Validate(); err != nil {
			t.Errorf("fault %s invalid: %v", f.ID, err)
		}
		types[f.ErrType] = true
	}
	// The probe has <, !=, <=, && checks and an array operand, so a broad
	// spread of Table 3 types must be generated.
	for _, want := range []fault.ErrType{
		fault.ErrLtLe, fault.ErrNeEq, fault.ErrLeLt,
		fault.ErrAndOr, fault.ErrTrueFalse, fault.ErrFalseTrue,
		fault.ErrIdxPlus, fault.ErrIdxMinus,
	} {
		if !types[want] {
			t.Errorf("missing checking error type %q (got %v)", want, types)
		}
	}
}

// TestAndOrMutationRuns drives the and->or corruption end to end:
// "flags[i] != 0 && i <= 6" admits i in {1,2,4,5} (count 4); mutated to
// "flags[i] != 0 || i <= 6" it admits every i (count 8).
func TestAndOrMutationRuns(t *testing.T) {
	c := compileProbe(t)
	var andFault *fault.Fault
	for i := range c.Debug.Checks {
		ck := c.Debug.Checks[i]
		if ck.Op != "&&" {
			continue
		}
		fs, err := locator.CheckingFaults(c, ck)
		if err != nil {
			t.Fatal(err)
		}
		for j := range fs {
			if fs[j].ErrType == fault.ErrAndOr {
				andFault = &fs[j]
			}
		}
	}
	if andFault == nil {
		t.Fatal("no and->or fault generated")
	}

	clean := runProbe(t, c, nil)
	if clean != "4\n" {
		t.Fatalf("clean output %q, want \"4\\n\"", clean)
	}
	mutated := runProbe(t, c, andFault)
	if mutated != "8\n" {
		t.Errorf("and->or output %q, want \"8\\n\" (condition degenerates to always-true)", mutated)
	}
}

func runProbe(t *testing.T, c *cc.Compiled, f *fault.Fault) string {
	t.Helper()
	m := vm.New(vm.Config{})
	if err := m.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}
	if f != nil {
		if _, err := injector.Arm(m, injector.ModeHardware, f); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.State() != vm.StateHalted {
		t.Fatalf("state %v", m.State())
	}
	return string(m.Output())
}

func TestPlanDeterminism(t *testing.T) {
	c := compileProbe(t)
	a, err := locator.PlanChecking(c, "p", 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := locator.PlanChecking(c, "p", 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Faults) != len(b.Faults) {
		t.Fatal("plans differ in size")
	}
	for i := range a.Faults {
		if a.Faults[i].ID != b.Faults[i].ID {
			t.Fatalf("fault %d: %s vs %s", i, a.Faults[i].ID, b.Faults[i].ID)
		}
	}
}

func TestAssignmentFaultRejectsCheckingType(t *testing.T) {
	c := compileProbe(t)
	if len(c.Debug.Assigns) == 0 {
		t.Fatal("no assigns")
	}
	_, err := locator.AssignmentFault(c.Debug.Assigns[0], fault.ErrLtLe, fault.Location{}, 0)
	if err == nil {
		t.Error("AssignmentFault accepted a checking error type")
	}
}

func TestPlanHardware(t *testing.T) {
	c := compileProbe(t)
	plan, err := locator.PlanHardware(c, "probe", 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Class != fault.ClassHardware {
		t.Errorf("class = %v", plan.Class)
	}
	if plan.Possible != len(c.Prog.Image.Text) {
		t.Errorf("possible = %d, want every instruction (%d)", plan.Possible, len(c.Prog.Image.Text))
	}
	if len(plan.Faults) != 10 {
		t.Fatalf("faults = %d, want 10", len(plan.Faults))
	}
	regs, buses := 0, 0
	for i := range plan.Faults {
		f := &plan.Faults[i]
		if err := f.Validate(); err != nil {
			t.Errorf("%s: %v", f.ID, err)
		}
		switch f.Corruptions[0].Kind {
		case fault.CorruptRegister:
			regs++
			if !f.Trigger.Once {
				t.Errorf("%s: register transients must fire once", f.ID)
			}
			if f.Corruptions[0].Reg == 0 {
				t.Errorf("%s: r0 is hardwired zero, flipping it is a no-op", f.ID)
			}
		case fault.CorruptFetch:
			buses++
		default:
			t.Errorf("%s: unexpected corruption %v", f.ID, f.Corruptions[0].Kind)
		}
	}
	if regs != 5 || buses != 5 {
		t.Errorf("got %d register and %d bus faults, want 5/5", regs, buses)
	}
	// Determinism.
	again, err := locator.PlanHardware(c, "probe", 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plan.Faults {
		if plan.Faults[i].ID != again.Faults[i].ID ||
			plan.Faults[i].Corruptions[0] != again.Faults[i].Corruptions[0] {
			t.Fatal("hardware plan not deterministic")
		}
	}
}

// TestHardwareFaultsRun injects a handful of hardware faults end to end;
// bit flips in a running program must never wedge the harness itself.
func TestHardwareFaultsRun(t *testing.T) {
	c := compileProbe(t)
	plan, err := locator.PlanHardware(c, "probe", 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	states := map[vm.State]int{}
	for i := range plan.Faults {
		m := vm.New(vm.Config{MaxCycles: 100000})
		if err := m.Load(c.Prog.Image); err != nil {
			t.Fatal(err)
		}
		if _, err := injector.Arm(m, injector.ModeHardware, &plan.Faults[i]); err != nil {
			t.Fatalf("%s: %v", plan.Faults[i].ID, err)
		}
		state, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		states[state]++
	}
	total := 0
	for _, n := range states {
		total += n
	}
	if total != 12 {
		t.Errorf("ran %d faults, want 12 (%v)", total, states)
	}
}
